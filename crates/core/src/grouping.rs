//! The multi-round job-grouping algorithm (the paper's Algorithm 1).
//!
//! With `k` resource types, Muri packs at most `k` jobs per group. Finding
//! the optimal `k`-way grouping is maximum-weight `k`-uniform hypergraph
//! matching — NP-hard — so the paper divides matching into `log2 k`
//! rounds: each round computes pairwise interleaving efficiencies, finds a
//! maximum-weight matching with the Blossom algorithm, and merges every
//! matched pair into one node for the next round.
//!
//! The Fig. 11 "w/o Blossom" ablation replaces matching with packing
//! consecutive jobs in priority order; Fig. 12's group-size sweep is the
//! `max_group_size` knob (merges that would exceed it get no edge).
//!
//! ## Performance structure
//!
//! The hot path is scoring `O(n²)` candidate pairs and matching them,
//! every scheduler tick. Three layers keep that cheap (see DESIGN.md's
//! Performance section):
//!
//! * γ lookups go through the bounded, allocation-free
//!   [`crate::gamma_cache`] (canonicalized fixed-size keys, segmented
//!   eviction);
//! * round-1 graphs, matchings, and final groups are memoized across
//!   calls in [`crate::round_cache`], so an unchanged bucket re-groups
//!   without touching the matcher;
//! * between rounds, edge weights are **incremental**: pairs of nodes
//!   that survived a merge round unchanged copy their weight from the
//!   previous round's graph instead of recomputing γ.
//!
//! Edge-weight construction optionally fans out over scoped worker
//! threads ([`GroupingConfig::workers`]); the output is bit-identical for
//! every worker count because each pair's weight is a pure function of
//! the two member sets.

use std::num::NonZeroUsize;
use std::rc::Rc;
use std::sync::OnceLock;

use muri_interleave::OrderingPolicy;
use muri_matching::{
    greedy_matching, maximum_weight_matching, pruned_maximum_weight_matching, weight_from_f64,
    DenseGraph, Matching, PruneConfig, DEFAULT_PRUNE_LOSS_BOUND, DEFAULT_PRUNE_TOP_M,
};
use muri_telemetry::timed_us;
use muri_workload::{StageProfile, NUM_RESOURCES};
use serde::{Deserialize, Serialize};

use crate::shard::{self, ShardBy, ShardCounters};
use crate::{gamma_cache, round_cache};

/// How jobs are grouped for interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GroupingMode {
    /// No grouping: every job runs alone (the non-interleaving baselines).
    None,
    /// Multi-round maximum-weight matching with Blossom (Algorithm 1).
    #[default]
    Blossom,
    /// Multi-round matching with the greedy ½-approximation instead of
    /// Blossom (an extra ablation of matching quality).
    GreedyMatching,
    /// Pack consecutive jobs in priority order ("Muri-L w/o Blossom",
    /// Fig. 11).
    PriorityPacking,
}

/// Grouping configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupingConfig {
    /// Grouping algorithm.
    pub mode: GroupingMode,
    /// Maximum jobs per group (2–4; the paper's Fig. 12 sweep).
    pub max_group_size: usize,
    /// Stage-ordering policy used both to weigh candidate groups and to
    /// execute them (Fig. 11's "worst ordering" ablation flips this).
    pub ordering: OrderingPolicy,
    /// Drop candidate pairs whose interleaving efficiency is below this
    /// threshold (0 reproduces the paper: any positive-γ pair may match).
    pub min_efficiency: f64,
    /// Merge only as far as the free capacity requires (see
    /// [`capacity_aware_grouping`]). Disabling this reproduces a literal
    /// reading of Algorithm 1 that groups maximally even next to idle
    /// GPUs — kept as an ablation of this repo's design decision
    /// (DESIGN.md §5b.3).
    pub capacity_aware: bool,
    /// Worker threads for edge-weight construction. `0` (the default)
    /// auto-detects from available parallelism; `1` forces the serial
    /// path. Grouping output is **bit-identical for every value** — the
    /// knob trades wall-clock for threads, never results — so it is
    /// excluded from all memoization keys.
    #[serde(default)]
    pub workers: usize,
    /// Sparsify Blossom inputs to each node's `prune_top_m` heaviest
    /// incident edges before matching (plus keep-threshold edges); `0`
    /// disables sparsification and always runs the dense solver. Results
    /// are protected by an a-posteriori loss certificate — see
    /// [`prune_loss_bound`](Self::prune_loss_bound).
    ///
    /// Serialized configs predating this knob deserialize to `0`
    /// (pruning off), preserving their original dense behaviour;
    /// [`GroupingConfig::default`] enables the paper-scale default.
    #[serde(default)]
    pub prune_top_m: usize,
    /// Maximum fraction of matching weight sparsification may sacrifice.
    /// When the certificate cannot guarantee this bound, the solver falls
    /// back to the dense Blossom run, so quality is always within
    /// `1 − prune_loss_bound` of optimal.
    #[serde(default)]
    pub prune_loss_bound: f64,
    /// When the sharded cold-start planner runs (see [`crate::shard`]):
    /// [`ShardBy::Auto`] engages it at
    /// [`shard::SHARD_AUTO_MIN_NODES`] nodes, `Off` always runs the
    /// dense round, `Force` shards every pool (smokes and tests).
    /// Sharded output is protected by the same loss-certificate
    /// machinery as edge pruning, composed across shards.
    #[serde(default)]
    pub shard_by: ShardBy,
    /// Nodes per shard for the sharded planner; `0` selects
    /// [`shard::DEFAULT_SHARD_SIZE`].
    #[serde(default)]
    pub shard_size: usize,
    /// Candidate partner classes per profile class in the sharded
    /// planner's locality-sensitive candidate graph; `0` selects
    /// [`shard::DEFAULT_CANDIDATE_M`].
    #[serde(default)]
    pub candidate_m: usize,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        GroupingConfig {
            mode: GroupingMode::Blossom,
            max_group_size: muri_workload::NUM_RESOURCES,
            ordering: OrderingPolicy::Best,
            min_efficiency: 0.0,
            capacity_aware: true,
            workers: 0,
            prune_top_m: DEFAULT_PRUNE_TOP_M,
            prune_loss_bound: DEFAULT_PRUNE_LOSS_BOUND,
            shard_by: ShardBy::Auto,
            shard_size: 0,
            candidate_m: 0,
        }
    }
}

impl GroupingConfig {
    /// No grouping at all.
    pub fn disabled() -> Self {
        GroupingConfig {
            mode: GroupingMode::None,
            ..GroupingConfig::default()
        }
    }
}

/// Interleaving efficiency of the group formed by merging the given jobs,
/// under the configured ordering policy.
///
/// Memoized per thread in the bounded [`crate::gamma_cache`]: the profile
/// universe is tiny without profiling noise (one profile per model), and
/// the scheduler recomputes the same pairs at every tick. Under the
/// permutation-invariant policies ([`OrderingPolicy::Best`] /
/// [`OrderingPolicy::Worst`]) all member orders share one cache entry and
/// return bit-identical values.
pub fn merged_efficiency(profiles: &[StageProfile], ordering: OrderingPolicy) -> f64 {
    gamma_cache::merged_efficiency_cached(profiles, ordering)
}

/// Below this node count a round's edge build stays on the calling
/// thread: spawn overhead beats the `O(n²)` scoring work.
const PAR_MIN_NODES: usize = 64;

/// Resolve the configured worker count for a round over `n` nodes.
pub(crate) fn resolve_workers(configured: usize, n: usize) -> usize {
    if n < PAR_MIN_NODES {
        return 1;
    }
    if configured != 0 {
        return configured;
    }
    static AUTO: OnceLock<usize> = OnceLock::new();
    *AUTO.get_or_init(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// Edge weight for merging two nodes: the fixed-point interleaving
/// efficiency of the combined member set, or 0 (no edge) when the merge
/// would exceed the size cap or fall below the efficiency threshold.
/// Pure in `(u, v)` — this is what makes parallel and incremental edge
/// construction exact.
pub(crate) fn node_pair_weight(
    members_u: &[usize],
    members_v: &[usize],
    profiles: &[StageProfile],
    cap: usize,
    ordering: OrderingPolicy,
    min_efficiency: f64,
) -> i64 {
    let total = members_u.len() + members_v.len();
    if total > cap {
        return 0;
    }
    let mut buf = [StageProfile::default(); NUM_RESOURCES];
    for (slot, &i) in buf.iter_mut().zip(members_u.iter().chain(members_v)) {
        *slot = profiles[i];
    }
    let gamma = merged_efficiency(&buf[..total], ordering);
    thresholded_weight(gamma, min_efficiency)
}

/// Apply the efficiency threshold **after** quantizing both sides onto
/// the `2⁻²⁰` fixed-point grid. Filtering in the float domain lets γ
/// values straddling a grid cell disagree with their own edge weight: a
/// pair can pass the filter yet quantize to weight 0 ("no edge"), or be
/// rejected although its quantized weight equals the quantized threshold.
fn thresholded_weight(gamma: f64, min_efficiency: f64) -> i64 {
    let w = weight_from_f64(gamma);
    if w >= weight_from_f64(min_efficiency) {
        w
    } else {
        0
    }
}

/// Build a round's edge-weight graph from scratch.
fn build_node_graph(
    nodes: &[Vec<usize>],
    profiles: &[StageProfile],
    cfg: &GroupingConfig,
    cap: usize,
) -> DenseGraph {
    DenseGraph::build_symmetric(
        nodes.len(),
        resolve_workers(cfg.workers, nodes.len()),
        |u, v| {
            node_pair_weight(
                &nodes[u],
                &nodes[v],
                profiles,
                cap,
                cfg.ordering,
                cfg.min_efficiency,
            )
        },
    )
}

/// Rebuild a round graph after merges, incrementally: a pair of nodes
/// that both survived the previous round unchanged has an unchanged
/// member set, so its weight is copied from the previous graph; only
/// pairs involving a freshly merged node are rescored.
fn update_node_graph(
    prev: &DenseGraph,
    provenance: &[Option<usize>],
    nodes: &[Vec<usize>],
    profiles: &[StageProfile],
    cfg: &GroupingConfig,
    cap: usize,
) -> DenseGraph {
    DenseGraph::build_symmetric(
        nodes.len(),
        resolve_workers(cfg.workers, nodes.len()),
        |u, v| match (provenance[u], provenance[v]) {
            (Some(a), Some(b)) => prev.weight(a, b),
            _ => node_pair_weight(
                &nodes[u],
                &nodes[v],
                profiles,
                cap,
                cfg.ordering,
                cfg.min_efficiency,
            ),
        },
    )
}

/// Merge matched pairs into single nodes: merged pairs first, then
/// surviving nodes, finally sorted by smallest member index (the
/// highest-priority job in the group — keeps output deterministic).
/// Also returns the provenance map for incremental edge weights:
/// `provenance[new] = Some(old)` when new node `new` is old node `old`
/// unchanged, `None` when it was freshly merged this round.
fn merge_nodes(
    nodes: &[Vec<usize>],
    pairs: &[(usize, usize)],
) -> (Vec<Vec<usize>>, Vec<Option<usize>>) {
    let mut next: Vec<(Vec<usize>, Option<usize>)> = Vec::with_capacity(nodes.len());
    let mut consumed = vec![false; nodes.len()];
    for &(u, v) in pairs {
        let mut merged = nodes[u].clone();
        merged.extend(nodes[v].iter().copied());
        merged.sort_unstable();
        next.push((merged, None));
        consumed[u] = true;
        consumed[v] = true;
    }
    for (u, node) in nodes.iter().enumerate() {
        if !consumed[u] {
            next.push((node.clone(), Some(u)));
        }
    }
    // Smallest members are unique across nodes (the node sets partition
    // the index space), so this sort has no ties to break.
    next.sort_by_key(|(g, _)| g[0]);
    next.into_iter().unzip()
}

/// Slot in the round cache's per-mode arrays for a matching mode.
fn mode_index(mode: GroupingMode) -> usize {
    match mode {
        GroupingMode::Blossom => 0,
        GroupingMode::GreedyMatching => 1,
        GroupingMode::None | GroupingMode::PriorityPacking => {
            unreachable!("only matching modes reach the matcher")
        }
    }
}

/// Sparsification stats of one grouping call, for telemetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneCounters {
    /// Edges dropped by the top-m sparsification pass across all
    /// matcher runs of the call.
    pub dropped_edges: u64,
    /// Dense fallbacks taken because the loss certificate failed.
    pub fallbacks: u64,
}

/// The matcher-level prune config for a grouping config.
pub(crate) fn prune_config(cfg: &GroupingConfig) -> PruneConfig {
    PruneConfig::new(cfg.prune_top_m, cfg.prune_loss_bound)
}

/// The round-cache key parameters for a grouping config.
fn round_params(cfg: &GroupingConfig, cap: usize) -> round_cache::RoundParams {
    round_cache::RoundParams {
        cap,
        ordering: cfg.ordering,
        min_eff_bits: cfg.min_efficiency.to_bits(),
        prune_top_m: cfg.prune_top_m,
        prune_loss_bits: cfg.prune_loss_bound.to_bits(),
        shard_by: cfg.shard_by,
        shard_size: cfg.shard_size,
        candidate_m: cfg.candidate_m,
    }
}

/// Run the configured matcher on a round graph. Blossom goes through the
/// certified sparsification pass when enabled and the graph is large
/// enough for pruning to remove anything (`n > m + 1` — below that every
/// incident edge is in every node's top-m and the pass is an exact no-op,
/// so we skip straight to the dense solver).
fn solve_matching(
    mode: GroupingMode,
    graph: &DenseGraph,
    prune: &PruneConfig,
    counters: &mut PruneCounters,
) -> Matching {
    match mode {
        GroupingMode::Blossom => {
            if prune.is_disabled() || graph.len() <= prune.top_m + 1 {
                maximum_weight_matching(graph)
            } else {
                let out = pruned_maximum_weight_matching(graph, prune);
                counters.dropped_edges += out.certificate.dropped_edges;
                if out.fell_back {
                    counters.fallbacks += 1;
                }
                #[cfg(feature = "audit")]
                if cfg!(debug_assertions) {
                    let report = muri_verify::audit_pruning(
                        graph,
                        &out.matching,
                        prune.top_m,
                        muri_matching::weight_from_f64(prune.keep_threshold),
                        out.fell_back,
                    );
                    debug_assert!(
                        report.is_clean(),
                        "pruned matching violated the sparsification contract:\n{report}"
                    );
                }
                out.matching
            }
        }
        GroupingMode::GreedyMatching => greedy_matching(graph),
        GroupingMode::None | GroupingMode::PriorityPacking => {
            unreachable!("only matching modes reach the matcher")
        }
    }
}

/// Group the jobs whose measured profiles are given, returning groups as
/// index sets into `profiles`. Every input index appears in exactly one
/// group; group sizes never exceed `cfg.max_group_size`.
///
/// The input order is the queue's priority order — `PriorityPacking`
/// relies on it, and tie-breaking favors earlier (higher-priority) jobs.
pub fn multi_round_grouping(profiles: &[StageProfile], cfg: &GroupingConfig) -> Vec<Vec<usize>> {
    let cap = cfg.max_group_size.clamp(1, muri_workload::NUM_RESOURCES);
    match cfg.mode {
        GroupingMode::None => (0..profiles.len()).map(|i| vec![i]).collect(),
        GroupingMode::PriorityPacking => {
            let mut groups = Vec::new();
            let mut current = Vec::new();
            for i in 0..profiles.len() {
                current.push(i);
                if current.len() == cap {
                    groups.push(std::mem::take(&mut current));
                }
            }
            if !current.is_empty() {
                groups.push(current);
            }
            groups
        }
        GroupingMode::Blossom | GroupingMode::GreedyMatching => {
            matched_grouping(profiles, cfg, cap)
        }
    }
}

/// Wall-clock sub-phase timings of one grouping call, for telemetry.
/// Graph build and matching cover only work actually performed — a
/// bucket answered by the round cache contributes zero to both (the
/// cache hit shows up in [`crate::round_cache::stats`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupingTimings {
    /// Microseconds spent building round edge-weight graphs.
    pub graph_build_us: u64,
    /// Microseconds spent in the matcher (Blossom or greedy).
    pub matching_us: u64,
    /// Matching rounds executed across all buckets.
    pub rounds: u32,
    /// Edges dropped by the sparsification pass (0 when pruning is
    /// disabled or every matcher run was answered by the round cache),
    /// including within-shard pruning on the sharded planner path.
    pub pruned_edges: u64,
    /// Dense fallbacks taken because the loss certificate failed
    /// (within-shard prune fallbacks included).
    pub prune_fallbacks: u64,
    /// Shard subproblems planned by the sharded cold-start planner
    /// (0 when it never engaged).
    pub shards: u64,
    /// Distinct shard templates solved (≤ `shards`; the rest were
    /// answered by the template cache).
    pub shard_templates: u64,
    /// Sharded plans whose composed loss certificate failed (each either
    /// fell back to the dense round or — beyond the dense-fallback size —
    /// was kept and surfaced here).
    pub shard_fallbacks: u64,
}

/// One GPU-count bucket of jobs to group (profiles in priority order).
#[derive(Debug, Clone)]
pub struct BucketInput {
    /// GPUs per job in this bucket.
    pub gpus: u32,
    /// Measured stage profiles, highest priority first.
    pub profiles: Vec<StageProfile>,
}

/// Per-bucket round state carried across the capacity-aware demand loop:
/// the current round graph, the matching solved on it, and — when merges
/// were applied since the graph was built — the provenance map that lets
/// the next round update the graph incrementally.
struct BucketRoundState {
    graph: Option<Rc<DenseGraph>>,
    matching: Option<Rc<Matching>>,
    pending: Option<Vec<Option<usize>>>,
    /// This bucket plans on the sharded path (decided from its initial
    /// size; flips to `false` permanently if a composed certificate
    /// fails at dense-fallback scale).
    sharded: bool,
    /// The sharded plan for the current nodes, kept until merges make it
    /// stale.
    shard_pairs: Option<Rc<round_cache::ShardedPairs>>,
}

/// Capacity-aware grouping across buckets: merge jobs **only as far as
/// needed** for the admitted demand to fit `free_gpus`, accepting the
/// highest-efficiency merges first.
///
/// Algorithm 1 dequeues "the first n jobs … so that these n jobs can form
/// k-job groups that fully utilize the cluster": grouping exists to pack a
/// backlog onto scarce GPUs. When the queue fits the free capacity
/// outright, sharing would only slow jobs down (idle GPUs next to 4-way
/// packed ones), so no merges happen; under backlog the rounds proceed
/// exactly as Algorithm 1 until either demand fits or group sizes reach
/// the cap.
///
/// Returns per-bucket groups of indices into that bucket's profile list.
pub fn capacity_aware_grouping(
    buckets: &[BucketInput],
    free_gpus: u32,
    cfg: &GroupingConfig,
) -> Vec<Vec<Vec<usize>>> {
    capacity_aware_grouping_timed(buckets, free_gpus, cfg, None)
}

/// [`capacity_aware_grouping`] with optional sub-phase timing capture.
/// With `timings: None` this is exactly the untimed path — no clock
/// reads — preserving the zero-overhead telemetry contract. Timings are
/// collected on the capacity-aware matching path (the Muri default); the
/// literal-Algorithm-1 and priority-packing ablations report only round
/// counts of zero.
pub fn capacity_aware_grouping_timed(
    buckets: &[BucketInput],
    free_gpus: u32,
    cfg: &GroupingConfig,
    timings: Option<&mut GroupingTimings>,
) -> Vec<Vec<Vec<usize>>> {
    let cap = cfg.max_group_size.clamp(1, muri_workload::NUM_RESOURCES);
    // Current nodes per bucket (each node = merged job indices).
    let mut nodes: Vec<Vec<Vec<usize>>> = buckets
        .iter()
        .map(|b| (0..b.profiles.len()).map(|i| vec![i]).collect())
        .collect();
    let demand = |nodes: &Vec<Vec<Vec<usize>>>| -> u64 {
        nodes
            .iter()
            .zip(buckets)
            .map(|(ns, b)| ns.len() as u64 * u64::from(b.gpus))
            .sum()
    };
    if cfg.mode == GroupingMode::None || cap <= 1 {
        return nodes;
    }
    if !cfg.capacity_aware {
        // Literal Algorithm 1: every bucket groups maximally, regardless
        // of how much capacity is actually free.
        return buckets
            .iter()
            .map(|b| multi_round_grouping(&b.profiles, cfg))
            .collect();
    }
    if cfg.mode == GroupingMode::PriorityPacking {
        // Find the smallest uniform chunk size that fits, up to the cap.
        for size in 1..=cap {
            let fits: u64 = buckets
                .iter()
                .map(|b| (b.profiles.len().div_ceil(size)) as u64 * u64::from(b.gpus))
                .sum();
            if fits <= u64::from(free_gpus) || size == cap {
                return buckets
                    .iter()
                    .map(|b| {
                        let sub = GroupingConfig {
                            max_group_size: size,
                            ..*cfg
                        };
                        multi_round_grouping(&b.profiles, &sub)
                    })
                    .collect();
            }
        }
        unreachable!("loop returns at size == cap");
    }
    // Matching modes: rounds of per-bucket matchings; accept the
    // highest-γ merges first, only while demand exceeds capacity.
    let mode_idx = mode_index(cfg.mode);
    let prune = prune_config(cfg);
    let params = round_params(cfg, cap);
    let timed = timings.is_some();
    let mut graph_us = 0u64;
    let mut match_us = 0u64;
    let mut rounds_run = 0u32;
    let mut prune_counters = PruneCounters::default();
    let mut shard_counters = ShardCounters::default();
    let mut states: Vec<BucketRoundState> = buckets
        .iter()
        .map(|b| BucketRoundState {
            graph: None,
            matching: None,
            pending: None,
            sharded: shard::use_sharding(cfg, b.profiles.len()),
            shard_pairs: None,
        })
        .collect();
    let max_rounds = 8;
    for _ in 0..max_rounds {
        if demand(&nodes) <= u64::from(free_gpus) {
            break;
        }
        rounds_run += 1;
        // Collect candidate merges from every bucket's matching.
        let mut candidates: Vec<(i64, usize, usize, usize)> = Vec::new(); // (w, bucket, u, v)
        for (bi, b) in buckets.iter().enumerate() {
            let ns = &nodes[bi];
            if ns.len() < 2 {
                continue;
            }
            let st = &mut states[bi];
            if st.sharded {
                // Sharded planning path: no dense graph ever exists for
                // this bucket. Recompute the plan only when merges made
                // the previous one stale.
                if st.pending.take().is_some() {
                    st.shard_pairs = None;
                }
                if st.shard_pairs.is_none() {
                    let singletons = ns.len() == b.profiles.len();
                    let computed = if singletons {
                        // Round 1 keys on exactly the profile list —
                        // memoized across calls (and across ticks).
                        round_cache::sharded_round1(&b.profiles, params, mode_idx, || {
                            timed_us(timed, &mut match_us, || {
                                shard::sharded_round(ns, &b.profiles, cfg, cap, &mut shard_counters)
                            })
                        })
                    } else {
                        timed_us(timed, &mut match_us, || {
                            shard::sharded_round(ns, &b.profiles, cfg, cap, &mut shard_counters)
                        })
                        .map(Rc::new)
                    };
                    match computed {
                        Some(pairs) => st.shard_pairs = Some(pairs),
                        None => {
                            // Composed certificate failed at a size the
                            // dense matrix can afford: this bucket goes
                            // dense from here on.
                            st.sharded = false;
                        }
                    }
                }
                if st.sharded {
                    if let Some(pairs) = &st.shard_pairs {
                        for &(u, v, w) in pairs.iter() {
                            candidates.push((w, bi, u, v));
                        }
                    }
                    continue;
                }
            }
            match (st.graph.take(), st.pending.take()) {
                (None, _) if ns.len() == b.profiles.len() => {
                    // Round 1: nodes are singletons, so this bucket's
                    // graph and matching key on exactly its profile list
                    // — memoized across calls (and across ticks).
                    let r = round_cache::round1(
                        &b.profiles,
                        params,
                        mode_idx,
                        || {
                            timed_us(timed, &mut graph_us, || {
                                build_node_graph(ns, &b.profiles, cfg, cap)
                            })
                        },
                        |g| {
                            timed_us(timed, &mut match_us, || {
                                solve_matching(cfg.mode, g, &prune, &mut prune_counters)
                            })
                        },
                    );
                    st.graph = Some(r.graph);
                    st.matching = r.matching;
                }
                (None, _) => {
                    // Mid-flight sharded→dense fallback: nodes have
                    // already merged, so the round-1 memo (keyed on
                    // singletons) does not apply — build directly.
                    let g = timed_us(timed, &mut graph_us, || {
                        build_node_graph(ns, &b.profiles, cfg, cap)
                    });
                    let any = g.has_edges();
                    let g = Rc::new(g);
                    st.matching = any.then(|| {
                        Rc::new(timed_us(timed, &mut match_us, || {
                            solve_matching(cfg.mode, &g, &prune, &mut prune_counters)
                        }))
                    });
                    st.graph = Some(g);
                }
                (Some(prev), Some(provenance)) => {
                    // Merges were applied: refresh the graph
                    // incrementally and re-match.
                    let g = timed_us(timed, &mut graph_us, || {
                        update_node_graph(&prev, &provenance, ns, &b.profiles, cfg, cap)
                    });
                    let any = g.has_edges();
                    let g = Rc::new(g);
                    st.matching = any.then(|| {
                        Rc::new(timed_us(timed, &mut match_us, || {
                            solve_matching(cfg.mode, &g, &prune, &mut prune_counters)
                        }))
                    });
                    st.graph = Some(g);
                }
                (Some(prev), None) => {
                    // No merges accepted here last round: graph and
                    // matching are both still current — reuse as-is.
                    st.graph = Some(prev);
                }
            }
            let (Some(graph), Some(matching)) = (&st.graph, &st.matching) else {
                continue;
            };
            for (u, v) in matching.pairs() {
                candidates.push((graph.weight(u, v), bi, u, v));
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut d = demand(&nodes);
        let mut merged_in: Vec<Vec<(usize, usize)>> = vec![Vec::new(); buckets.len()];
        // Phase 1: accept merges in efficiency order, but never push the
        // demand *below* the free capacity — a coarse merge in a big-GPU
        // bucket would otherwise strand idle GPUs.
        let mut leftover: Vec<(i64, usize, usize, usize)> = Vec::new();
        for (w, bi, u, v) in candidates {
            let g = u64::from(buckets[bi].gpus);
            if d <= u64::from(free_gpus) {
                break;
            }
            if d - g >= u64::from(free_gpus) {
                merged_in[bi].push((u, v));
                d -= g;
            } else {
                leftover.push((w, bi, u, v));
            }
        }
        // Phase 2: still over capacity — overshoot once with the merge
        // that wastes the fewest GPUs (running packed beats queueing).
        if d > u64::from(free_gpus) {
            leftover.sort_by(|a, b| {
                buckets[a.1]
                    .gpus
                    .cmp(&buckets[b.1].gpus)
                    .then(b.0.cmp(&a.0))
            });
            if let Some((_, bi, u, v)) = leftover.into_iter().next() {
                d -= u64::from(buckets[bi].gpus);
                merged_in[bi].push((u, v));
            }
        }
        let mut progressed = false;
        for (bi, merges) in merged_in.iter().enumerate() {
            if merges.is_empty() {
                continue;
            }
            progressed = true;
            let (next, provenance) = merge_nodes(&nodes[bi], merges);
            nodes[bi] = next;
            states[bi].pending = Some(provenance);
        }
        if !progressed {
            break;
        }
    }
    if let Some(t) = timings {
        t.graph_build_us = graph_us;
        t.matching_us = match_us;
        t.rounds = rounds_run;
        t.pruned_edges = prune_counters.dropped_edges + shard_counters.pruned_edges;
        t.prune_fallbacks = prune_counters.fallbacks + shard_counters.prune_fallbacks;
        t.shards = shard_counters.shards;
        t.shard_templates = shard_counters.templates;
        t.shard_fallbacks = shard_counters.cert_failures;
    }
    nodes
}

fn matched_grouping(
    profiles: &[StageProfile],
    cfg: &GroupingConfig,
    cap: usize,
) -> Vec<Vec<usize>> {
    if profiles.len() < 2 {
        return (0..profiles.len()).map(|i| vec![i]).collect();
    }
    let mode_idx = mode_index(cfg.mode);
    let prune = prune_config(cfg);
    let params = round_params(cfg, cap);
    // Sparsification stats of the ablation path are not reported —
    // telemetry collects them on the capacity-aware scheduler path.
    let mut prune_counters = PruneCounters::default();
    // An exactly repeated call (same profiles, cap, policy, threshold,
    // prune config) returns the memoized groups without touching the
    // matcher.
    if let Some(groups) = round_cache::cached_final_groups(profiles, params, mode_idx) {
        return groups;
    }
    if shard::use_sharding(cfg, profiles.len()) {
        let mut counters = ShardCounters::default();
        if let Some(groups) = sharded_matched_grouping(profiles, cfg, cap, &mut counters) {
            round_cache::store_final_groups(profiles, params, mode_idx, &groups);
            return groups;
        }
        // A composed certificate failed at dense-fallback scale: run the
        // dense rounds below from scratch (deterministic either way).
    }
    // Nodes start as singletons; each round merges matched pairs.
    let mut nodes: Vec<Vec<usize>> = (0..profiles.len()).map(|i| vec![i]).collect();
    let rounds = (usize::BITS - (cap.max(1) - 1).leading_zeros()) as usize; // ceil(log2(cap))
                                                                            // The previous round's graph plus the provenance of `nodes` relative
                                                                            // to it, for incremental edge weights.
    let mut carried: Option<(Rc<DenseGraph>, Vec<Option<usize>>)> = None;
    for _ in 0..rounds {
        if nodes.len() < 2 {
            break;
        }
        let (graph, any_edge, matching) = match carried.take() {
            None => {
                let r = round_cache::round1(
                    profiles,
                    params,
                    mode_idx,
                    || build_node_graph(&nodes, profiles, cfg, cap),
                    |g| solve_matching(cfg.mode, g, &prune, &mut prune_counters),
                );
                (r.graph, r.any_edge, r.matching)
            }
            Some((prev, provenance)) => {
                let g = update_node_graph(&prev, &provenance, &nodes, profiles, cfg, cap);
                let any = g.has_edges();
                let g = Rc::new(g);
                let m =
                    any.then(|| Rc::new(solve_matching(cfg.mode, &g, &prune, &mut prune_counters)));
                (g, any, m)
            }
        };
        if !any_edge {
            break;
        }
        let Some(matching) = matching else {
            break;
        };
        let (next, provenance) = merge_nodes(&nodes, &matching.pairs());
        nodes = next;
        carried = Some((graph, provenance));
    }
    round_cache::store_final_groups(profiles, params, mode_idx, &nodes);
    nodes
}

/// The multi-round grouping loop on the sharded planner: each round
/// plans matched pairs without ever materializing a dense graph, then
/// merges them. Returns `None` when a round's composed loss certificate
/// failed at dense-fallback scale — the caller reruns the dense rounds.
fn sharded_matched_grouping(
    profiles: &[StageProfile],
    cfg: &GroupingConfig,
    cap: usize,
    counters: &mut ShardCounters,
) -> Option<Vec<Vec<usize>>> {
    let mode_idx = mode_index(cfg.mode);
    let params = round_params(cfg, cap);
    let mut nodes: Vec<Vec<usize>> = (0..profiles.len()).map(|i| vec![i]).collect();
    let rounds = (usize::BITS - (cap.max(1) - 1).leading_zeros()) as usize; // ceil(log2(cap))
    for round in 0..rounds {
        if nodes.len() < 2 {
            break;
        }
        let pairs = if round == 0 {
            // Round 1 keys on exactly the profile list — memoized across
            // calls. Only certified plans enter the memo.
            round_cache::sharded_round1(profiles, params, mode_idx, || {
                shard::sharded_round(&nodes, profiles, cfg, cap, counters)
            })?
        } else {
            Rc::new(shard::sharded_round(&nodes, profiles, cfg, cap, counters)?)
        };
        if pairs.is_empty() {
            break;
        }
        let merges: Vec<(usize, usize)> = pairs.iter().map(|&(u, v, _)| (u, v)).collect();
        let (next, _) = merge_nodes(&nodes, &merges);
        nodes = next;
    }
    Some(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muri_workload::SimDuration;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn cpu_gpu(cpu: u64, gpu: u64) -> StageProfile {
        StageProfile::new(SimDuration::ZERO, secs(cpu), secs(gpu), SimDuration::ZERO)
    }

    fn assert_partition(groups: &[Vec<usize>], n: usize, cap: usize) {
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..n).collect::<Vec<_>>(),
            "not a partition: {groups:?}"
        );
        for g in groups {
            assert!(g.len() <= cap, "group {g:?} exceeds cap {cap}");
        }
    }

    #[test]
    fn figure4_blossom_finds_plan1() {
        // A (cpu-heavy), B (gpu-heavy), C (cpu-heavy), D (gpu-heavy):
        // optimal pairing is the complementary one, (A,B) and (C,D) — or
        // any cpu/gpu pairing — never (A,C)/(B,D).
        let profiles = vec![cpu_gpu(2, 1), cpu_gpu(1, 2), cpu_gpu(2, 1), cpu_gpu(1, 2)];
        let cfg = GroupingConfig {
            max_group_size: 2,
            ..GroupingConfig::default()
        };
        let groups = multi_round_grouping(&profiles, &cfg);
        assert_partition(&groups, 4, 2);
        for g in &groups {
            assert_eq!(g.len(), 2);
            let kinds: Vec<u64> = g
                .iter()
                .map(|&i| {
                    profiles[i]
                        .duration(muri_workload::ResourceKind::Cpu)
                        .as_micros()
                })
                .collect();
            assert_ne!(
                kinds[0], kinds[1],
                "paired two same-bottleneck jobs: {groups:?}"
            );
        }
    }

    #[test]
    fn four_way_grouping_reaches_cap() {
        // Four jobs each bottlenecked on a different resource: two rounds
        // of matching merge all four into one group.
        let profiles: Vec<StageProfile> = (0..4)
            .map(|i| {
                let mut stage = [secs(1); 4];
                stage[i] = secs(4);
                StageProfile::new(stage[0], stage[1], stage[2], stage[3])
            })
            .collect();
        let groups = multi_round_grouping(&profiles, &GroupingConfig::default());
        assert_partition(&groups, 4, 4);
        assert_eq!(groups.len(), 1, "expected one 4-job group, got {groups:?}");
    }

    #[test]
    fn cap_three_never_exceeded() {
        let profiles: Vec<StageProfile> = (0..7)
            .map(|i| {
                let mut stage = [secs(1); 4];
                stage[i % 4] = secs(3 + (i % 3) as u64);
                StageProfile::new(stage[0], stage[1], stage[2], stage[3])
            })
            .collect();
        let cfg = GroupingConfig {
            max_group_size: 3,
            ..GroupingConfig::default()
        };
        let groups = multi_round_grouping(&profiles, &cfg);
        assert_partition(&groups, 7, 3);
    }

    #[test]
    fn priority_packing_chunks_in_order() {
        let profiles = vec![cpu_gpu(1, 1); 5];
        let cfg = GroupingConfig {
            mode: GroupingMode::PriorityPacking,
            max_group_size: 2,
            ..GroupingConfig::default()
        };
        let groups = multi_round_grouping(&profiles, &cfg);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn none_mode_keeps_singletons() {
        let profiles = vec![cpu_gpu(1, 2); 3];
        let groups = multi_round_grouping(&profiles, &GroupingConfig::disabled());
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn blossom_total_efficiency_dominates_priority_packing() {
        // Alternating bottlenecks arranged so naive packing pairs clones.
        let profiles = vec![
            cpu_gpu(4, 1),
            cpu_gpu(4, 1),
            cpu_gpu(1, 4),
            cpu_gpu(1, 4),
            cpu_gpu(4, 1),
            cpu_gpu(1, 4),
        ];
        let cap2 = |mode| GroupingConfig {
            mode,
            max_group_size: 2,
            ..GroupingConfig::default()
        };
        let total = |groups: &[Vec<usize>]| -> f64 {
            groups
                .iter()
                .map(|g| {
                    let ps: Vec<StageProfile> = g.iter().map(|&i| profiles[i]).collect();
                    merged_efficiency(&ps, OrderingPolicy::Best)
                })
                .sum()
        };
        let blossom = total(&multi_round_grouping(
            &profiles,
            &cap2(GroupingMode::Blossom),
        ));
        let packing = total(&multi_round_grouping(
            &profiles,
            &cap2(GroupingMode::PriorityPacking),
        ));
        assert!(
            blossom > packing + 0.1,
            "blossom {blossom} should clearly beat packing {packing}"
        );
    }

    #[test]
    fn min_efficiency_threshold_blocks_bad_pairs() {
        // Two identical GPU-only jobs: γ = 0.5. A threshold above that
        // leaves them ungrouped.
        let profiles = vec![cpu_gpu(0, 2), cpu_gpu(0, 2)];
        let cfg = GroupingConfig {
            min_efficiency: 0.9,
            ..GroupingConfig::default()
        };
        let groups = multi_round_grouping(&profiles, &cfg);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(multi_round_grouping(&[], &GroupingConfig::default()).is_empty());
        let one = multi_round_grouping(&[cpu_gpu(1, 1)], &GroupingConfig::default());
        assert_eq!(one, vec![vec![0]]);
    }

    #[test]
    fn capacity_aware_skips_merging_when_everything_fits() {
        let buckets = vec![BucketInput {
            gpus: 1,
            profiles: vec![cpu_gpu(2, 1); 6],
        }];
        let groups = capacity_aware_grouping(&buckets, 8, &GroupingConfig::default());
        assert_eq!(groups[0].len(), 6, "no merges needed: {groups:?}");
        assert!(groups[0].iter().all(|g| g.len() == 1));
    }

    #[test]
    fn capacity_aware_merges_exactly_to_capacity_in_single_gpu_bucket() {
        // 10 single-GPU jobs, 7 free GPUs: exactly 3 merges (7 groups).
        let profiles: Vec<StageProfile> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    cpu_gpu(2, 1)
                } else {
                    cpu_gpu(1, 2)
                }
            })
            .collect();
        let buckets = vec![BucketInput { gpus: 1, profiles }];
        let groups = capacity_aware_grouping(&buckets, 7, &GroupingConfig::default());
        assert_eq!(groups[0].len(), 7, "{groups:?}");
        let total: usize = groups[0].iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn capacity_aware_never_overshoots_by_more_than_one_merge() {
        // Two buckets: 4 × 8-GPU jobs and 6 × 1-GPU jobs; 20 free GPUs.
        // Demand 38; merging should land at >= 20 - 8 + 1 = 13 GPUs.
        let big = BucketInput {
            gpus: 8,
            profiles: vec![cpu_gpu(2, 1), cpu_gpu(1, 2), cpu_gpu(2, 1), cpu_gpu(1, 2)],
        };
        let small = BucketInput {
            gpus: 1,
            profiles: (0..6)
                .map(|i| {
                    if i % 2 == 0 {
                        cpu_gpu(3, 1)
                    } else {
                        cpu_gpu(1, 3)
                    }
                })
                .collect(),
        };
        let groups = capacity_aware_grouping(&[big, small], 20, &GroupingConfig::default());
        let demand: u64 = groups[0].len() as u64 * 8 + groups[1].len() as u64;
        assert!(demand <= 20, "over capacity: {demand}");
        assert!(demand >= 12, "overshot needlessly: {demand} ({groups:?})");
    }

    #[test]
    fn literal_mode_groups_maximally_regardless_of_capacity() {
        let buckets = vec![BucketInput {
            gpus: 1,
            profiles: (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        cpu_gpu(2, 1)
                    } else {
                        cpu_gpu(1, 2)
                    }
                })
                .collect(),
        }];
        let cfg = GroupingConfig {
            capacity_aware: false,
            ..GroupingConfig::default()
        };
        // Capacity is ample, yet the literal variant still merges to cap.
        let groups = capacity_aware_grouping(&buckets, 64, &cfg);
        assert!(
            groups[0].iter().any(|g| g.len() > 1),
            "literal mode must group anyway: {groups:?}"
        );
    }

    #[test]
    fn grouping_is_deterministic() {
        let profiles: Vec<StageProfile> = (0..10)
            .map(|i| cpu_gpu(1 + (i % 4) as u64, 4 - (i % 4) as u64))
            .collect();
        let cfg = GroupingConfig::default();
        assert_eq!(
            multi_round_grouping(&profiles, &cfg),
            multi_round_grouping(&profiles, &cfg)
        );
    }

    #[test]
    fn repeated_grouping_hits_the_round_cache() {
        crate::round_cache::reset();
        let profiles: Vec<StageProfile> = (0..12)
            .map(|i| cpu_gpu(1 + (i % 4) as u64, 4 - (i % 4) as u64))
            .collect();
        let cfg = GroupingConfig::default();
        let first = multi_round_grouping(&profiles, &cfg);
        let before = crate::round_cache::stats();
        let second = multi_round_grouping(&profiles, &cfg);
        let after = crate::round_cache::stats();
        assert_eq!(first, second);
        assert!(
            after.hits > before.hits,
            "second identical call must hit the memo: {before:?} -> {after:?}"
        );
        assert_eq!(
            after.misses, before.misses,
            "second identical call must not miss"
        );
        crate::round_cache::reset();
    }

    #[test]
    fn threshold_filter_agrees_with_quantized_weights() {
        use muri_matching::WEIGHT_SCALE;
        let grid = |k: i64, frac: f64| (k as f64 + frac) / WEIGHT_SCALE as f64;
        // γ just below the threshold in the float domain, but both
        // quantize to the same grid point: the edge must survive (the old
        // float-domain filter rejected it).
        let min_eff = grid(786_432, 0.4); // rounds to 786_432
        let gamma = grid(786_432, 0.2); // also rounds to 786_432
        assert!(gamma < min_eff, "test setup: float compare must disagree");
        assert_eq!(thresholded_weight(gamma, min_eff), 786_432);
        // γ above the threshold but rounding *below* the quantized
        // threshold must be rejected — filter and weight agree.
        let min_eff = grid(786_432, 0.6); // rounds to 786_433
        let gamma = grid(786_432, 0.7); // also rounds to 786_433
        assert!(gamma > min_eff);
        assert_eq!(thresholded_weight(gamma, min_eff), 786_433);
        let below = grid(786_432, 0.3); // rounds to 786_432 < 786_433
        assert_eq!(thresholded_weight(below, min_eff), 0);
        // A γ that passes a tiny float threshold but quantizes to 0 is
        // "no edge" on both sides of the filter now.
        assert_eq!(thresholded_weight(2e-7, 1e-7), 0);
    }

    #[test]
    fn pruned_grouping_is_deterministic_and_partitions() {
        // Big enough that top-m=2 actually drops edges in round 1.
        let profiles: Vec<StageProfile> = (0..40)
            .map(|i| cpu_gpu(1 + (i % 6) as u64, 6 - (i % 6) as u64))
            .collect();
        let cfg = GroupingConfig {
            prune_top_m: 2,
            ..GroupingConfig::default()
        };
        crate::round_cache::reset();
        let a = multi_round_grouping(&profiles, &cfg);
        crate::round_cache::reset();
        let b = multi_round_grouping(&profiles, &cfg);
        assert_eq!(a, b);
        assert_partition(&a, 40, 4);
    }

    #[test]
    fn prune_disabled_matches_small_graph_shortcut() {
        // n ≤ top_m + 1: the pruned path is skipped entirely, so results
        // must be bit-identical to pruning disabled.
        let profiles: Vec<StageProfile> = (0..8)
            .map(|i| cpu_gpu(1 + (i % 4) as u64, 4 - (i % 4) as u64))
            .collect();
        let pruned_cfg = GroupingConfig::default(); // top_m = 8 ≥ n − 1
        let dense_cfg = GroupingConfig {
            prune_top_m: 0,
            ..GroupingConfig::default()
        };
        crate::round_cache::reset();
        let pruned = multi_round_grouping(&profiles, &pruned_cfg);
        let dense = multi_round_grouping(&profiles, &dense_cfg);
        assert_eq!(pruned, dense);
    }

    #[test]
    fn prune_counters_reach_timings_on_backlog() {
        // A single-GPU backlog far over capacity forces real matcher runs;
        // with an aggressive prune width the counters must register drops.
        crate::round_cache::reset();
        let profiles: Vec<StageProfile> = (0..30)
            .map(|i| cpu_gpu(1 + (i % 5) as u64, 5 - (i % 5) as u64))
            .collect();
        let buckets = vec![BucketInput { gpus: 1, profiles }];
        let cfg = GroupingConfig {
            prune_top_m: 2,
            ..GroupingConfig::default()
        };
        let mut timings = GroupingTimings::default();
        let groups = capacity_aware_grouping_timed(&buckets, 4, &cfg, Some(&mut timings));
        assert!(timings.rounds > 0);
        assert!(
            timings.pruned_edges > 0,
            "top_m=2 over 30 nodes must drop edges: {timings:?}"
        );
        let total: usize = groups[0].iter().map(Vec::len).sum();
        assert_eq!(total, 30);
        crate::round_cache::reset();
    }

    #[test]
    fn worker_counts_do_not_change_output() {
        // More nodes than PAR_MIN_NODES so the parallel path really runs.
        let profiles: Vec<StageProfile> = (0..80)
            .map(|i| cpu_gpu(1 + (i % 5) as u64, 5 - (i % 5) as u64))
            .collect();
        let mut reference = None;
        for workers in [1usize, 2, 4] {
            crate::round_cache::reset();
            crate::gamma_cache::reset();
            let cfg = GroupingConfig {
                workers,
                ..GroupingConfig::default()
            };
            let groups = multi_round_grouping(&profiles, &cfg);
            match &reference {
                None => reference = Some(groups),
                Some(r) => assert_eq!(r, &groups, "workers={workers} diverged"),
            }
        }
    }
}
