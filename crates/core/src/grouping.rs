//! The multi-round job-grouping algorithm (the paper's Algorithm 1).
//!
//! With `k` resource types, Muri packs at most `k` jobs per group. Finding
//! the optimal `k`-way grouping is maximum-weight `k`-uniform hypergraph
//! matching — NP-hard — so the paper divides matching into `log2 k`
//! rounds: each round computes pairwise interleaving efficiencies, finds a
//! maximum-weight matching with the Blossom algorithm, and merges every
//! matched pair into one node for the next round.
//!
//! The Fig. 11 "w/o Blossom" ablation replaces matching with packing
//! consecutive jobs in priority order; Fig. 12's group-size sweep is the
//! `max_group_size` knob (merges that would exceed it get no edge).

use muri_interleave::{choose_ordering, group_efficiency, OrderingPolicy};
use muri_matching::{greedy_matching, maximum_weight_matching, weight_from_f64, DenseGraph};
use muri_workload::StageProfile;
use serde::{Deserialize, Serialize};

/// How jobs are grouped for interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum GroupingMode {
    /// No grouping: every job runs alone (the non-interleaving baselines).
    None,
    /// Multi-round maximum-weight matching with Blossom (Algorithm 1).
    #[default]
    Blossom,
    /// Multi-round matching with the greedy ½-approximation instead of
    /// Blossom (an extra ablation of matching quality).
    GreedyMatching,
    /// Pack consecutive jobs in priority order ("Muri-L w/o Blossom",
    /// Fig. 11).
    PriorityPacking,
}

/// Grouping configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupingConfig {
    /// Grouping algorithm.
    pub mode: GroupingMode,
    /// Maximum jobs per group (2–4; the paper's Fig. 12 sweep).
    pub max_group_size: usize,
    /// Stage-ordering policy used both to weigh candidate groups and to
    /// execute them (Fig. 11's "worst ordering" ablation flips this).
    pub ordering: OrderingPolicy,
    /// Drop candidate pairs whose interleaving efficiency is below this
    /// threshold (0 reproduces the paper: any positive-γ pair may match).
    pub min_efficiency: f64,
    /// Merge only as far as the free capacity requires (see
    /// [`capacity_aware_grouping`]). Disabling this reproduces a literal
    /// reading of Algorithm 1 that groups maximally even next to idle
    /// GPUs — kept as an ablation of this repo's design decision
    /// (DESIGN.md §5b.3).
    pub capacity_aware: bool,
}

impl Default for GroupingConfig {
    fn default() -> Self {
        GroupingConfig {
            mode: GroupingMode::Blossom,
            max_group_size: muri_workload::NUM_RESOURCES,
            ordering: OrderingPolicy::Best,
            min_efficiency: 0.0,
            capacity_aware: true,
        }
    }
}

impl GroupingConfig {
    /// No grouping at all.
    pub fn disabled() -> Self {
        GroupingConfig {
            mode: GroupingMode::None,
            ..GroupingConfig::default()
        }
    }
}

/// Interleaving efficiency of the group formed by merging the given jobs,
/// under the configured ordering policy.
///
/// Memoized per thread: the profile universe is tiny without profiling
/// noise (one profile per model), and the scheduler recomputes the same
/// pairs at every tick. The cache is bounded to stay harmless under noisy
/// profiles (where every job's profile is distinct).
pub fn merged_efficiency(profiles: &[StageProfile], ordering: OrderingPolicy) -> f64 {
    use std::cell::RefCell;
    use std::collections::HashMap;
    thread_local! {
        static CACHE: RefCell<HashMap<(Vec<StageProfile>, OrderingPolicy), f64>> =
            RefCell::new(HashMap::new());
    }
    CACHE.with(|cache| {
        let key = (profiles.to_vec(), ordering);
        if let Some(&gamma) = cache.borrow().get(&key) {
            return gamma;
        }
        let chosen = choose_ordering(profiles, ordering);
        let gamma = group_efficiency(profiles, &chosen.offsets);
        let mut cache = cache.borrow_mut();
        if cache.len() >= 200_000 {
            cache.clear();
        }
        cache.insert(key, gamma);
        gamma
    })
}

/// Group the jobs whose measured profiles are given, returning groups as
/// index sets into `profiles`. Every input index appears in exactly one
/// group; group sizes never exceed `cfg.max_group_size`.
///
/// The input order is the queue's priority order — `PriorityPacking`
/// relies on it, and tie-breaking favors earlier (higher-priority) jobs.
pub fn multi_round_grouping(profiles: &[StageProfile], cfg: &GroupingConfig) -> Vec<Vec<usize>> {
    let cap = cfg.max_group_size.clamp(1, muri_workload::NUM_RESOURCES);
    match cfg.mode {
        GroupingMode::None => (0..profiles.len()).map(|i| vec![i]).collect(),
        GroupingMode::PriorityPacking => {
            let mut groups = Vec::new();
            let mut current = Vec::new();
            for i in 0..profiles.len() {
                current.push(i);
                if current.len() == cap {
                    groups.push(std::mem::take(&mut current));
                }
            }
            if !current.is_empty() {
                groups.push(current);
            }
            groups
        }
        GroupingMode::Blossom | GroupingMode::GreedyMatching => {
            matched_grouping(profiles, cfg, cap)
        }
    }
}

/// One GPU-count bucket of jobs to group (profiles in priority order).
#[derive(Debug, Clone)]
pub struct BucketInput {
    /// GPUs per job in this bucket.
    pub gpus: u32,
    /// Measured stage profiles, highest priority first.
    pub profiles: Vec<StageProfile>,
}

/// Capacity-aware grouping across buckets: merge jobs **only as far as
/// needed** for the admitted demand to fit `free_gpus`, accepting the
/// highest-efficiency merges first.
///
/// Algorithm 1 dequeues "the first n jobs … so that these n jobs can form
/// k-job groups that fully utilize the cluster": grouping exists to pack a
/// backlog onto scarce GPUs. When the queue fits the free capacity
/// outright, sharing would only slow jobs down (idle GPUs next to 4-way
/// packed ones), so no merges happen; under backlog the rounds proceed
/// exactly as Algorithm 1 until either demand fits or group sizes reach
/// the cap.
///
/// Returns per-bucket groups of indices into that bucket's profile list.
pub fn capacity_aware_grouping(
    buckets: &[BucketInput],
    free_gpus: u32,
    cfg: &GroupingConfig,
) -> Vec<Vec<Vec<usize>>> {
    let cap = cfg.max_group_size.clamp(1, muri_workload::NUM_RESOURCES);
    // Current nodes per bucket (each node = merged job indices).
    let mut nodes: Vec<Vec<Vec<usize>>> = buckets
        .iter()
        .map(|b| (0..b.profiles.len()).map(|i| vec![i]).collect())
        .collect();
    let demand = |nodes: &Vec<Vec<Vec<usize>>>| -> u64 {
        nodes
            .iter()
            .zip(buckets)
            .map(|(ns, b)| ns.len() as u64 * u64::from(b.gpus))
            .sum()
    };
    if cfg.mode == GroupingMode::None || cap <= 1 {
        return nodes;
    }
    if !cfg.capacity_aware {
        // Literal Algorithm 1: every bucket groups maximally, regardless
        // of how much capacity is actually free.
        return buckets
            .iter()
            .map(|b| multi_round_grouping(&b.profiles, cfg))
            .collect();
    }
    if cfg.mode == GroupingMode::PriorityPacking {
        // Find the smallest uniform chunk size that fits, up to the cap.
        for size in 1..=cap {
            let fits: u64 = buckets
                .iter()
                .map(|b| (b.profiles.len().div_ceil(size)) as u64 * u64::from(b.gpus))
                .sum();
            if fits <= u64::from(free_gpus) || size == cap {
                return buckets
                    .iter()
                    .map(|b| {
                        let sub = GroupingConfig {
                            max_group_size: size,
                            ..*cfg
                        };
                        multi_round_grouping(&b.profiles, &sub)
                    })
                    .collect();
            }
        }
        unreachable!("loop returns at size == cap");
    }
    // Matching modes: rounds of per-bucket matchings; accept the
    // highest-γ merges first, only while demand exceeds capacity.
    let max_rounds = 8;
    for _ in 0..max_rounds {
        if demand(&nodes) <= u64::from(free_gpus) {
            break;
        }
        // Collect candidate merges from every bucket's matching.
        let mut candidates: Vec<(i64, usize, usize, usize)> = Vec::new(); // (w, bucket, u, v)
        for (bi, b) in buckets.iter().enumerate() {
            let ns = &nodes[bi];
            if ns.len() < 2 {
                continue;
            }
            let mut graph = DenseGraph::new(ns.len());
            let mut any = false;
            for u in 0..ns.len() {
                for v in u + 1..ns.len() {
                    if ns[u].len() + ns[v].len() > cap {
                        continue;
                    }
                    let merged: Vec<StageProfile> = ns[u]
                        .iter()
                        .chain(ns[v].iter())
                        .map(|&i| b.profiles[i])
                        .collect();
                    let gamma = merged_efficiency(&merged, cfg.ordering);
                    if gamma >= cfg.min_efficiency {
                        let w = weight_from_f64(gamma);
                        if w > 0 {
                            graph.set_weight(u, v, w);
                            any = true;
                        }
                    }
                }
            }
            if !any {
                continue;
            }
            let matching = match cfg.mode {
                GroupingMode::Blossom => maximum_weight_matching(&graph),
                GroupingMode::GreedyMatching => greedy_matching(&graph),
                _ => unreachable!(),
            };
            for (u, v) in matching.pairs() {
                candidates.push((graph.weight(u, v), bi, u, v));
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut d = demand(&nodes);
        let mut merged_in: Vec<Vec<(usize, usize)>> = vec![Vec::new(); buckets.len()];
        // Phase 1: accept merges in efficiency order, but never push the
        // demand *below* the free capacity — a coarse merge in a big-GPU
        // bucket would otherwise strand idle GPUs.
        let mut leftover: Vec<(i64, usize, usize, usize)> = Vec::new();
        for (w, bi, u, v) in candidates {
            let g = u64::from(buckets[bi].gpus);
            if d <= u64::from(free_gpus) {
                break;
            }
            if d - g >= u64::from(free_gpus) {
                merged_in[bi].push((u, v));
                d -= g;
            } else {
                leftover.push((w, bi, u, v));
            }
        }
        // Phase 2: still over capacity — overshoot once with the merge
        // that wastes the fewest GPUs (running packed beats queueing).
        if d > u64::from(free_gpus) {
            leftover.sort_by(|a, b| {
                buckets[a.1]
                    .gpus
                    .cmp(&buckets[b.1].gpus)
                    .then(b.0.cmp(&a.0))
            });
            if let Some((_, bi, u, v)) = leftover.into_iter().next() {
                d -= u64::from(buckets[bi].gpus);
                merged_in[bi].push((u, v));
            }
        }
        let mut progressed = false;
        for (bi, merges) in merged_in.iter().enumerate() {
            if merges.is_empty() {
                continue;
            }
            progressed = true;
            let ns = &mut nodes[bi];
            let mut consumed = vec![false; ns.len()];
            let mut next: Vec<Vec<usize>> = Vec::with_capacity(ns.len());
            for &(u, v) in merges {
                let mut m = ns[u].clone();
                m.extend(ns[v].iter().copied());
                m.sort_unstable();
                next.push(m);
                consumed[u] = true;
                consumed[v] = true;
            }
            for (u, node) in ns.iter().enumerate() {
                if !consumed[u] {
                    next.push(node.clone());
                }
            }
            next.sort_by_key(|g| g[0]);
            *ns = next;
        }
        if !progressed {
            break;
        }
    }
    nodes
}

fn matched_grouping(
    profiles: &[StageProfile],
    cfg: &GroupingConfig,
    cap: usize,
) -> Vec<Vec<usize>> {
    // Nodes start as singletons; each round merges matched pairs.
    let mut nodes: Vec<Vec<usize>> = (0..profiles.len()).map(|i| vec![i]).collect();
    let rounds = (usize::BITS - (cap.max(1) - 1).leading_zeros()) as usize; // ceil(log2(cap))
    for _ in 0..rounds {
        if nodes.len() < 2 {
            break;
        }
        let mut graph = DenseGraph::new(nodes.len());
        let mut any_edge = false;
        for u in 0..nodes.len() {
            for v in u + 1..nodes.len() {
                if nodes[u].len() + nodes[v].len() > cap {
                    continue;
                }
                let merged: Vec<StageProfile> = nodes[u]
                    .iter()
                    .chain(nodes[v].iter())
                    .map(|&i| profiles[i])
                    .collect();
                let gamma = merged_efficiency(&merged, cfg.ordering);
                if gamma >= cfg.min_efficiency {
                    let w = weight_from_f64(gamma);
                    if w > 0 {
                        graph.set_weight(u, v, w);
                        any_edge = true;
                    }
                }
            }
        }
        if !any_edge {
            break;
        }
        let matching = match cfg.mode {
            GroupingMode::Blossom => maximum_weight_matching(&graph),
            GroupingMode::GreedyMatching => greedy_matching(&graph),
            _ => unreachable!("matched_grouping only runs for matching modes"),
        };
        let mut next: Vec<Vec<usize>> = Vec::with_capacity(nodes.len());
        let mut consumed = vec![false; nodes.len()];
        for (u, v) in matching.pairs() {
            let mut merged = nodes[u].clone();
            merged.extend(nodes[v].iter().copied());
            merged.sort_unstable();
            next.push(merged);
            consumed[u] = true;
            consumed[v] = true;
        }
        for (u, node) in nodes.iter().enumerate() {
            if !consumed[u] {
                next.push(node.clone());
            }
        }
        // Keep deterministic ordering: by smallest member index (which is
        // the highest-priority job in the group).
        next.sort_by_key(|g| g[0]);
        nodes = next;
    }
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use muri_workload::SimDuration;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn cpu_gpu(cpu: u64, gpu: u64) -> StageProfile {
        StageProfile::new(SimDuration::ZERO, secs(cpu), secs(gpu), SimDuration::ZERO)
    }

    fn assert_partition(groups: &[Vec<usize>], n: usize, cap: usize) {
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            (0..n).collect::<Vec<_>>(),
            "not a partition: {groups:?}"
        );
        for g in groups {
            assert!(g.len() <= cap, "group {g:?} exceeds cap {cap}");
        }
    }

    #[test]
    fn figure4_blossom_finds_plan1() {
        // A (cpu-heavy), B (gpu-heavy), C (cpu-heavy), D (gpu-heavy):
        // optimal pairing is the complementary one, (A,B) and (C,D) — or
        // any cpu/gpu pairing — never (A,C)/(B,D).
        let profiles = vec![cpu_gpu(2, 1), cpu_gpu(1, 2), cpu_gpu(2, 1), cpu_gpu(1, 2)];
        let cfg = GroupingConfig {
            max_group_size: 2,
            ..GroupingConfig::default()
        };
        let groups = multi_round_grouping(&profiles, &cfg);
        assert_partition(&groups, 4, 2);
        for g in &groups {
            assert_eq!(g.len(), 2);
            let kinds: Vec<u64> = g
                .iter()
                .map(|&i| {
                    profiles[i]
                        .duration(muri_workload::ResourceKind::Cpu)
                        .as_micros()
                })
                .collect();
            assert_ne!(
                kinds[0], kinds[1],
                "paired two same-bottleneck jobs: {groups:?}"
            );
        }
    }

    #[test]
    fn four_way_grouping_reaches_cap() {
        // Four jobs each bottlenecked on a different resource: two rounds
        // of matching merge all four into one group.
        let profiles: Vec<StageProfile> = (0..4)
            .map(|i| {
                let mut stage = [secs(1); 4];
                stage[i] = secs(4);
                StageProfile::new(stage[0], stage[1], stage[2], stage[3])
            })
            .collect();
        let groups = multi_round_grouping(&profiles, &GroupingConfig::default());
        assert_partition(&groups, 4, 4);
        assert_eq!(groups.len(), 1, "expected one 4-job group, got {groups:?}");
    }

    #[test]
    fn cap_three_never_exceeded() {
        let profiles: Vec<StageProfile> = (0..7)
            .map(|i| {
                let mut stage = [secs(1); 4];
                stage[i % 4] = secs(3 + (i % 3) as u64);
                StageProfile::new(stage[0], stage[1], stage[2], stage[3])
            })
            .collect();
        let cfg = GroupingConfig {
            max_group_size: 3,
            ..GroupingConfig::default()
        };
        let groups = multi_round_grouping(&profiles, &cfg);
        assert_partition(&groups, 7, 3);
    }

    #[test]
    fn priority_packing_chunks_in_order() {
        let profiles = vec![cpu_gpu(1, 1); 5];
        let cfg = GroupingConfig {
            mode: GroupingMode::PriorityPacking,
            max_group_size: 2,
            ..GroupingConfig::default()
        };
        let groups = multi_round_grouping(&profiles, &cfg);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3], vec![4]]);
    }

    #[test]
    fn none_mode_keeps_singletons() {
        let profiles = vec![cpu_gpu(1, 2); 3];
        let groups = multi_round_grouping(&profiles, &GroupingConfig::disabled());
        assert_eq!(groups, vec![vec![0], vec![1], vec![2]]);
    }

    #[test]
    fn blossom_total_efficiency_dominates_priority_packing() {
        // Alternating bottlenecks arranged so naive packing pairs clones.
        let profiles = vec![
            cpu_gpu(4, 1),
            cpu_gpu(4, 1),
            cpu_gpu(1, 4),
            cpu_gpu(1, 4),
            cpu_gpu(4, 1),
            cpu_gpu(1, 4),
        ];
        let cap2 = |mode| GroupingConfig {
            mode,
            max_group_size: 2,
            ..GroupingConfig::default()
        };
        let total = |groups: &[Vec<usize>]| -> f64 {
            groups
                .iter()
                .map(|g| {
                    let ps: Vec<StageProfile> = g.iter().map(|&i| profiles[i]).collect();
                    merged_efficiency(&ps, OrderingPolicy::Best)
                })
                .sum()
        };
        let blossom = total(&multi_round_grouping(
            &profiles,
            &cap2(GroupingMode::Blossom),
        ));
        let packing = total(&multi_round_grouping(
            &profiles,
            &cap2(GroupingMode::PriorityPacking),
        ));
        assert!(
            blossom > packing + 0.1,
            "blossom {blossom} should clearly beat packing {packing}"
        );
    }

    #[test]
    fn min_efficiency_threshold_blocks_bad_pairs() {
        // Two identical GPU-only jobs: γ = 0.5. A threshold above that
        // leaves them ungrouped.
        let profiles = vec![cpu_gpu(0, 2), cpu_gpu(0, 2)];
        let cfg = GroupingConfig {
            min_efficiency: 0.9,
            ..GroupingConfig::default()
        };
        let groups = multi_round_grouping(&profiles, &cfg);
        assert_eq!(groups.len(), 2);
    }

    #[test]
    fn empty_and_single_inputs() {
        assert!(multi_round_grouping(&[], &GroupingConfig::default()).is_empty());
        let one = multi_round_grouping(&[cpu_gpu(1, 1)], &GroupingConfig::default());
        assert_eq!(one, vec![vec![0]]);
    }

    #[test]
    fn capacity_aware_skips_merging_when_everything_fits() {
        let buckets = vec![BucketInput {
            gpus: 1,
            profiles: vec![cpu_gpu(2, 1); 6],
        }];
        let groups = capacity_aware_grouping(&buckets, 8, &GroupingConfig::default());
        assert_eq!(groups[0].len(), 6, "no merges needed: {groups:?}");
        assert!(groups[0].iter().all(|g| g.len() == 1));
    }

    #[test]
    fn capacity_aware_merges_exactly_to_capacity_in_single_gpu_bucket() {
        // 10 single-GPU jobs, 7 free GPUs: exactly 3 merges (7 groups).
        let profiles: Vec<StageProfile> = (0..10)
            .map(|i| {
                if i % 2 == 0 {
                    cpu_gpu(2, 1)
                } else {
                    cpu_gpu(1, 2)
                }
            })
            .collect();
        let buckets = vec![BucketInput { gpus: 1, profiles }];
        let groups = capacity_aware_grouping(&buckets, 7, &GroupingConfig::default());
        assert_eq!(groups[0].len(), 7, "{groups:?}");
        let total: usize = groups[0].iter().map(Vec::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn capacity_aware_never_overshoots_by_more_than_one_merge() {
        // Two buckets: 4 × 8-GPU jobs and 6 × 1-GPU jobs; 20 free GPUs.
        // Demand 38; merging should land at >= 20 - 8 + 1 = 13 GPUs.
        let big = BucketInput {
            gpus: 8,
            profiles: vec![cpu_gpu(2, 1), cpu_gpu(1, 2), cpu_gpu(2, 1), cpu_gpu(1, 2)],
        };
        let small = BucketInput {
            gpus: 1,
            profiles: (0..6)
                .map(|i| {
                    if i % 2 == 0 {
                        cpu_gpu(3, 1)
                    } else {
                        cpu_gpu(1, 3)
                    }
                })
                .collect(),
        };
        let groups = capacity_aware_grouping(&[big, small], 20, &GroupingConfig::default());
        let demand: u64 = groups[0].len() as u64 * 8 + groups[1].len() as u64;
        assert!(demand <= 20, "over capacity: {demand}");
        assert!(demand >= 12, "overshot needlessly: {demand} ({groups:?})");
    }

    #[test]
    fn literal_mode_groups_maximally_regardless_of_capacity() {
        let buckets = vec![BucketInput {
            gpus: 1,
            profiles: (0..8)
                .map(|i| {
                    if i % 2 == 0 {
                        cpu_gpu(2, 1)
                    } else {
                        cpu_gpu(1, 2)
                    }
                })
                .collect(),
        }];
        let cfg = GroupingConfig {
            capacity_aware: false,
            ..GroupingConfig::default()
        };
        // Capacity is ample, yet the literal variant still merges to cap.
        let groups = capacity_aware_grouping(&buckets, 64, &cfg);
        assert!(
            groups[0].iter().any(|g| g.len() > 1),
            "literal mode must group anyway: {groups:?}"
        );
    }

    #[test]
    fn grouping_is_deterministic() {
        let profiles: Vec<StageProfile> = (0..10)
            .map(|i| cpu_gpu(1 + (i % 4) as u64, 4 - (i % 4) as u64))
            .collect();
        let cfg = GroupingConfig::default();
        assert_eq!(
            multi_round_grouping(&profiles, &cfg),
            multi_round_grouping(&profiles, &cfg)
        );
    }
}
