//! Bounded, allocation-free memoization of merged interleaving efficiency.
//!
//! [`crate::grouping`] scores `O(n²)` candidate pairs per matching round
//! and the scheduler re-scores the same pairs tick after tick, so γ
//! lookups are among the hottest paths in the planner. This module
//! replaces the original `Vec`-keyed memo (which allocated a fresh key
//! per lookup and dropped the *entire* cache on overflow) with:
//!
//! * a fixed-size key — `[StageProfile; NUM_RESOURCES]` plus a length —
//!   so lookups never allocate;
//! * key canonicalization under the permutation-invariant policies
//!   ([`OrderingPolicy::Best`] / [`OrderingPolicy::Worst`]): members are
//!   sorted into a canonical order so `[A, B]` and `[B, A]` share one
//!   entry. γ itself is computed **on the sorted order**, which makes the
//!   invariance exact at the bit level rather than merely within float
//!   tolerance. [`OrderingPolicy::Canonical`] executes stages in the
//!   caller's order, so its key keeps that order;
//! * segmented (hot/cold) eviction instead of wholesale `clear()`: on
//!   overflow the cold half is dropped and the hot half demoted, while a
//!   hit in the cold half promotes the entry back to hot — so entries the
//!   scheduler still touches survive overflow indefinitely;
//! * a cheap multiply-rotate hasher ([`FxHasher`]) — SipHash dominates
//!   the lookup cost for small fixed-size keys;
//! * hit/miss counters exposed through [`stats`] for tests and tuning.
//!
//! The cache is thread-local: scoped worker threads spawned by the
//! parallel edge builder each get a fresh (empty) cache for the duration
//! of one build, while the serial path accumulates across calls.

use muri_interleave::{policy_efficiency, OrderingPolicy};
use muri_workload::{StageProfile, NUM_RESOURCES};
use std::cell::RefCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Entries per segment; two segments bound the cache at twice this.
const DEFAULT_SEGMENT_CAPACITY: usize = 100_000;

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A multiply-rotate hasher in the style of rustc's FxHash: word-at-a-time
/// mixing with no finalization round. Not DoS-resistant — fine here, keys
/// are internal profile data, never attacker-controlled.
#[derive(Default, Clone)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add(n as u64);
    }
}

pub(crate) type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Fixed-size canonical cache key: the member profiles (padded with
/// defaults past `len`), the member count, and the ordering policy.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct GammaKey {
    profiles: [StageProfile; NUM_RESOURCES],
    len: u8,
    ordering: OrderingPolicy,
}

impl GammaKey {
    fn new(profiles: &[StageProfile], ordering: OrderingPolicy) -> Self {
        assert!(
            profiles.len() <= NUM_RESOURCES,
            "at most {NUM_RESOURCES} jobs per group, got {}",
            profiles.len()
        );
        let mut buf = [StageProfile::default(); NUM_RESOURCES];
        buf[..profiles.len()].copy_from_slice(profiles);
        if matches!(ordering, OrderingPolicy::Best | OrderingPolicy::Worst) {
            // Best/Worst optimize over stage orderings, so γ is invariant
            // under member permutation; sorting folds all permutations
            // into one entry (and one bit pattern — γ is computed on this
            // order). Canonical is order-dependent: never sort it.
            buf[..profiles.len()].sort_unstable_by_key(|p| p.stage.0);
        }
        GammaKey {
            profiles: buf,
            len: profiles.len() as u8,
            ordering,
        }
    }

    fn profiles(&self) -> &[StageProfile] {
        &self.profiles[..usize::from(self.len)]
    }
}

/// Hit/miss counters of a thread-local cache, plus its live entry count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache (either segment).
    pub hits: u64,
    /// Lookups that had to compute γ.
    pub misses: u64,
    /// Entries currently resident across both segments.
    pub entries: usize,
}

struct SegmentedCache {
    /// Recently inserted or touched entries.
    hot: HashMap<GammaKey, f64, FxBuildHasher>,
    /// The previous hot segment; dropped wholesale on the next rotation.
    cold: HashMap<GammaKey, f64, FxBuildHasher>,
    segment_capacity: usize,
    hits: u64,
    misses: u64,
}

impl SegmentedCache {
    fn new(segment_capacity: usize) -> Self {
        SegmentedCache {
            hot: HashMap::default(),
            cold: HashMap::default(),
            segment_capacity: segment_capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, key: &GammaKey) -> Option<f64> {
        if let Some(&gamma) = self.hot.get(key) {
            self.hits += 1;
            return Some(gamma);
        }
        if let Some(gamma) = self.cold.remove(key) {
            // Promote: a cold hit proves the entry is still in use, so it
            // must outlive the next rotation.
            self.hits += 1;
            self.insert(*key, gamma);
            return Some(gamma);
        }
        None
    }

    fn insert(&mut self, key: GammaKey, gamma: f64) {
        if self.hot.len() >= self.segment_capacity {
            // Rotate: demote the hot segment, drop the old cold one. Only
            // entries untouched for a full segment's worth of inserts die.
            self.cold = std::mem::take(&mut self.hot);
        }
        self.hot.insert(key, gamma);
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.hot.len() + self.cold.len(),
        }
    }
}

thread_local! {
    static CACHE: RefCell<SegmentedCache> =
        RefCell::new(SegmentedCache::new(DEFAULT_SEGMENT_CAPACITY));
}

/// Memoized [`policy_efficiency`] over the canonicalized member set.
/// This is the allocation-free backend of
/// [`crate::grouping::merged_efficiency`].
pub(crate) fn merged_efficiency_cached(profiles: &[StageProfile], ordering: OrderingPolicy) -> f64 {
    let key = GammaKey::new(profiles, ordering);
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if let Some(gamma) = cache.get(&key) {
            return gamma;
        }
        cache.misses += 1;
        let gamma = policy_efficiency(key.profiles(), ordering);
        cache.insert(key, gamma);
        gamma
    })
}

/// Hit/miss/occupancy counters of this thread's γ cache.
pub fn stats() -> CacheStats {
    CACHE.with(|cache| cache.borrow().stats())
}

/// Drop every cached entry and zero the counters on this thread. Tests
/// use this to make cache-sensitive assertions (and cross-worker
/// equivalence checks) non-vacuous.
pub fn reset() {
    CACHE.with(|cache| {
        let cap = cache.borrow().segment_capacity;
        *cache.borrow_mut() = SegmentedCache::new(cap);
    });
}

/// Override the per-segment capacity on this thread (entries, not bytes);
/// the cache holds at most twice this. Implies [`reset`].
#[doc(hidden)]
pub fn set_segment_capacity(segment_capacity: usize) {
    CACHE.with(|cache| {
        *cache.borrow_mut() = SegmentedCache::new(segment_capacity);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use muri_workload::SimDuration;

    fn profile(a: u64, b: u64) -> StageProfile {
        StageProfile::new(
            SimDuration::from_micros(a),
            SimDuration::from_micros(b),
            SimDuration::from_micros(1),
            SimDuration::from_micros(1),
        )
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        set_segment_capacity(64);
        let ps = [profile(1, 2), profile(2, 1)];
        let first = merged_efficiency_cached(&ps, OrderingPolicy::Best);
        let second = merged_efficiency_cached(&ps, OrderingPolicy::Best);
        assert_eq!(first.to_bits(), second.to_bits());
        let s = stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.entries, 1);
        reset();
        assert_eq!(stats(), CacheStats::default());
    }

    #[test]
    fn permuted_members_share_one_entry_under_best() {
        set_segment_capacity(64);
        let a = profile(3, 1);
        let b = profile(1, 3);
        let ab = merged_efficiency_cached(&[a, b], OrderingPolicy::Best);
        let ba = merged_efficiency_cached(&[b, a], OrderingPolicy::Best);
        assert_eq!(ab.to_bits(), ba.to_bits());
        let s = stats();
        assert_eq!(s.misses, 1, "permutations must share one cache entry");
        assert_eq!(s.entries, 1);
        reset();
    }

    #[test]
    fn canonical_policy_keeps_member_order_distinct() {
        set_segment_capacity(64);
        let a = profile(3, 1);
        let b = profile(1, 3);
        merged_efficiency_cached(&[a, b], OrderingPolicy::Canonical);
        merged_efficiency_cached(&[b, a], OrderingPolicy::Canonical);
        assert_eq!(
            stats().misses,
            2,
            "Canonical is order-dependent; orders must not collide"
        );
        reset();
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        // Regression for the old wholesale clear(): filling past the
        // bound must not evict entries that are still being touched.
        set_segment_capacity(4);
        let keep = [profile(1000, 1), profile(1, 1000)];
        merged_efficiency_cached(&keep, OrderingPolicy::Best);
        // Push 16 distinct entries through a capacity-4 segment, touching
        // `keep` between every insert so it keeps getting promoted.
        for i in 0..16u64 {
            merged_efficiency_cached(&[profile(i + 1, 2 * i + 3)], OrderingPolicy::Best);
            merged_efficiency_cached(&keep, OrderingPolicy::Best);
        }
        let s = stats();
        assert_eq!(
            s.misses, 17,
            "`keep` must never be recomputed despite 4x overflow: {s:?}"
        );
        assert_eq!(s.hits, 16);
        assert!(
            s.entries <= 8,
            "cache must stay bounded at two segments: {s:?}"
        );
        reset();
    }

    #[test]
    fn cache_stays_bounded_under_churn() {
        set_segment_capacity(8);
        for i in 0..1000u64 {
            merged_efficiency_cached(&[profile(i + 1, i + 2)], OrderingPolicy::Best);
        }
        assert!(stats().entries <= 16);
        reset();
    }
}
