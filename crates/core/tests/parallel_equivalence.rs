//! Property tests for the grouping pipeline's equivalence guarantees:
//!
//! * `merged_efficiency` is **bit-identical** under every permutation of
//!   the member set for the permutation-invariant policies (Best/Worst),
//!   and matches the direct (uncached) computation within float
//!   tolerance — so the cache's key canonicalization is both exact and
//!   semantically honest;
//! * grouping output is **byte-identical across worker counts** (1, 2,
//!   4) for both `multi_round_grouping` and `capacity_aware_grouping`.
//!   Caches are reset between runs so each worker count really computes
//!   from scratch rather than replaying the first run's memo.

use muri_core::grouping::{capacity_aware_grouping, BucketInput};
use muri_core::{gamma_cache, merged_efficiency, multi_round_grouping, round_cache};
use muri_core::{GroupingConfig, GroupingMode};
use muri_interleave::{policy_efficiency, OrderingPolicy};
use muri_workload::{SimDuration, StageProfile};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = StageProfile> {
    (1u64..=50, 1u64..=50, 1u64..=50, 1u64..=50).prop_map(|(s, c, g, n)| {
        StageProfile::new(
            SimDuration::from_millis(s),
            SimDuration::from_millis(c),
            SimDuration::from_millis(g),
            SimDuration::from_millis(n),
        )
    })
}

/// All permutations of `0..n` for `n <= 4`, in lexicographic order.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    assert!(n <= 4);
    let mut out = Vec::new();
    let mut idx: Vec<usize> = (0..n).collect();
    // Heap-free lexicographic enumeration: small n, recursion is fine.
    fn rec(prefix: &mut Vec<usize>, rest: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if rest.is_empty() {
            out.push(prefix.clone());
            return;
        }
        for i in 0..rest.len() {
            let x = rest.remove(i);
            prefix.push(x);
            rec(prefix, rest, out);
            prefix.pop();
            rest.insert(i, x);
        }
    }
    rec(&mut Vec::new(), &mut idx, &mut out);
    out
}

fn reset_caches() {
    gamma_cache::reset();
    round_cache::reset();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merged_efficiency_is_permutation_invariant(
        profiles in proptest::collection::vec(arb_profile(), 1..=4),
    ) {
        for policy in [OrderingPolicy::Best, OrderingPolicy::Worst] {
            let reference = merged_efficiency(&profiles, policy);
            for perm in permutations(profiles.len()) {
                let permuted: Vec<StageProfile> =
                    perm.iter().map(|&i| profiles[i]).collect();
                // Cache canonicalization: exact at the bit level.
                let cached = merged_efficiency(&permuted, policy);
                prop_assert_eq!(
                    cached.to_bits(),
                    reference.to_bits(),
                    "cached γ differs across permutations: {} vs {}",
                    cached,
                    reference
                );
                // Semantic honesty: the direct, uncached computation on
                // the permuted order agrees within float tolerance.
                let direct = policy_efficiency(&permuted, policy);
                prop_assert!(
                    (direct - reference).abs() < 1e-9,
                    "direct γ {} diverges from canonical {}",
                    direct,
                    reference
                );
            }
        }
    }

    #[test]
    fn grouping_with_and_without_round_cache_agree(
        profiles in proptest::collection::vec(arb_profile(), 2..=16),
    ) {
        // A warm round cache must return exactly what a cold run computes.
        reset_caches();
        let cfg = GroupingConfig::default();
        let cold = multi_round_grouping(&profiles, &cfg);
        let warm = multi_round_grouping(&profiles, &cfg);
        prop_assert_eq!(&cold, &warm);
        reset_caches();
        let recomputed = multi_round_grouping(&profiles, &cfg);
        prop_assert_eq!(&cold, &recomputed);
    }
}

proptest! {
    // Sizes reach past the parallel threshold (64 nodes) so the scoped
    // worker path genuinely runs; fewer cases keep Blossom cost sane.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn multi_round_grouping_identical_across_worker_counts(
        profiles in proptest::collection::vec(arb_profile(), 2..=80),
        mode_greedy in any::<bool>(),
        max_group_size in 2usize..=4,
    ) {
        let mode = if mode_greedy {
            GroupingMode::GreedyMatching
        } else {
            GroupingMode::Blossom
        };
        let mut reference: Option<Vec<Vec<usize>>> = None;
        for workers in [1usize, 2, 4] {
            reset_caches();
            let cfg = GroupingConfig {
                mode,
                max_group_size,
                workers,
                ..GroupingConfig::default()
            };
            let groups = multi_round_grouping(&profiles, &cfg);
            match &reference {
                None => reference = Some(groups),
                Some(r) => prop_assert_eq!(
                    r,
                    &groups,
                    "multi_round_grouping diverged at workers={}",
                    workers
                ),
            }
        }
    }

    #[test]
    fn capacity_aware_grouping_identical_across_worker_counts(
        big_bucket in proptest::collection::vec(arb_profile(), 1..=72),
        small_buckets in proptest::collection::vec(
            proptest::collection::vec(arb_profile(), 1..=12),
            0..=2,
        ),
        free_gpus in 1u32..=24,
        mode_greedy in any::<bool>(),
    ) {
        let mut bucket_profiles = vec![big_bucket];
        bucket_profiles.extend(small_buckets);
        let mode = if mode_greedy {
            GroupingMode::GreedyMatching
        } else {
            GroupingMode::Blossom
        };
        let buckets: Vec<BucketInput> = bucket_profiles
            .iter()
            .enumerate()
            .map(|(i, profiles)| BucketInput {
                gpus: 1 << (bucket_profiles.len() - 1 - i),
                profiles: profiles.clone(),
            })
            .collect();
        let mut reference: Option<Vec<Vec<Vec<usize>>>> = None;
        for workers in [1usize, 2, 4] {
            reset_caches();
            let cfg = GroupingConfig {
                mode,
                workers,
                ..GroupingConfig::default()
            };
            let grouped = capacity_aware_grouping(&buckets, free_gpus, &cfg);
            match &reference {
                None => reference = Some(grouped),
                Some(r) => prop_assert_eq!(
                    r,
                    &grouped,
                    "capacity_aware_grouping diverged at workers={}",
                    workers
                ),
            }
        }
    }
}
