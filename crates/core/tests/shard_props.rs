//! Property tests for the sharded cold-start planner (DESIGN.md §8):
//!
//! * **Certified loss bound vs the unsharded oracle.** At `max_group_size
//!   = 2` the grouping objective is exactly the matching weight, so the
//!   composed sharding+pruning certificate implies `W_sharded ≥
//!   (1 − ε) · W_dense` for the same config with sharding off: a
//!   certified plan satisfies `W ≥ (1 − ε) · U` where the half-max-sum
//!   bound `U` dominates every matching (including the dense optimum),
//!   and a failed certificate at small n falls back to the dense path
//!   verbatim. Either way the inequality must hold.
//! * **Bit-identical output across worker counts** (1, 2, 4) and across
//!   shard sizes re-run from cold caches: the shard assembly order and
//!   the scoped-thread chunking must never leak into results.
//! * **Structural validity**: sharded groupings are exact partitions of
//!   the job pool respecting `max_group_size`.

use muri_core::{gamma_cache, merged_efficiency, multi_round_grouping, round_cache};
use muri_core::{GroupingConfig, GroupingMode, ShardBy};
use muri_matching::weight_from_f64;
use muri_workload::{SimDuration, StageProfile};
use proptest::prelude::*;

fn arb_profile() -> impl Strategy<Value = StageProfile> {
    (1u64..=50, 1u64..=50, 1u64..=50, 1u64..=50).prop_map(|(s, c, g, n)| {
        StageProfile::new(
            SimDuration::from_millis(s),
            SimDuration::from_millis(c),
            SimDuration::from_millis(g),
            SimDuration::from_millis(n),
        )
    })
}

/// A job pool drawn from a small palette of profile classes — the
/// workload shape sharding is built for (few model families repeated
/// across many jobs), which exercises the profile-class table, the LSH
/// signatures, and the shard-template dedup cache.
fn arb_class_pool() -> impl Strategy<Value = Vec<StageProfile>> {
    proptest::collection::vec(arb_profile(), 2..=5).prop_flat_map(|palette| {
        let k = palette.len();
        proptest::collection::vec(0..k, 6..=48)
            .prop_map(move |picks| picks.into_iter().map(|i| palette[i]).collect())
    })
}

fn reset_caches() {
    gamma_cache::reset();
    round_cache::reset();
}

/// The grouping objective at `max_group_size = 2`: summed quantized pair
/// weights, recomputed from scratch through the same `merged_efficiency`
/// + `weight_from_f64` pipeline the planner uses.
fn total_pair_weight(
    groups: &[Vec<usize>],
    profiles: &[StageProfile],
    cfg: &GroupingConfig,
) -> i64 {
    groups
        .iter()
        .filter(|g| g.len() == 2)
        .map(|g| {
            let members: Vec<StageProfile> = g.iter().map(|&i| profiles[i]).collect();
            weight_from_f64(merged_efficiency(&members, cfg.ordering))
        })
        .sum()
}

fn check_partition(groups: &[Vec<usize>], n: usize, max_group_size: usize) {
    let mut seen = vec![false; n];
    for g in groups {
        assert!(
            !g.is_empty() && g.len() <= max_group_size,
            "group size {}",
            g.len()
        );
        for &i in g {
            assert!(i < n, "member {i} out of range");
            assert!(!seen[i], "member {i} appears twice");
            seen[i] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "some job left ungrouped");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharded output weight stays within the certified loss bound of
    /// the unsharded oracle, for both solvers, across shard sizes and
    /// candidate budgets.
    #[test]
    fn sharded_weight_meets_certified_bound_vs_unsharded_oracle(
        profiles in arb_class_pool(),
        shard_size in 3usize..=12,
        candidate_m in 1usize..=4,
        mode_greedy in any::<bool>(),
    ) {
        let mode = if mode_greedy {
            GroupingMode::GreedyMatching
        } else {
            GroupingMode::Blossom
        };
        let base = GroupingConfig {
            mode,
            max_group_size: 2,
            ..GroupingConfig::default()
        };

        reset_caches();
        let dense_cfg = GroupingConfig { shard_by: ShardBy::Off, ..base };
        let dense = multi_round_grouping(&profiles, &dense_cfg);
        let dense_w = total_pair_weight(&dense, &profiles, &dense_cfg);

        reset_caches();
        let sharded_cfg = GroupingConfig {
            shard_by: ShardBy::Force,
            shard_size,
            candidate_m,
            ..base
        };
        let sharded = multi_round_grouping(&profiles, &sharded_cfg);
        check_partition(&sharded, profiles.len(), 2);
        let sharded_w = total_pair_weight(&sharded, &profiles, &sharded_cfg);

        let eps = sharded_cfg.prune_loss_bound;
        // Quantization slack: weights are exact i64, but ε enters the
        // certificate through LOSS_BOUND_SCALE quantization — allow a
        // few units on weights in the hundreds of thousands.
        prop_assert!(
            sharded_w as f64 + 4.0 >= (1.0 - eps) * dense_w as f64,
            "sharded weight {} fell below (1-{})·{} (shard_size={}, candidate_m={}, mode={:?})",
            sharded_w, eps, dense_w, shard_size, candidate_m, mode
        );
    }
}

proptest! {
    // Pool sizes reach past the scoped-thread threshold; fewer cases
    // keep repeated Blossom runs affordable.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharded grouping is byte-identical at 1, 2, and 4 workers, from
    /// cold caches each time — the parallel template solves must not
    /// leak scheduling order into the plan.
    #[test]
    fn sharded_grouping_identical_across_worker_counts(
        profiles in proptest::collection::vec(arb_profile(), 4..=80),
        shard_size in 3usize..=9,
        max_group_size in 2usize..=4,
        mode_greedy in any::<bool>(),
    ) {
        let mode = if mode_greedy {
            GroupingMode::GreedyMatching
        } else {
            GroupingMode::Blossom
        };
        let mut reference: Option<Vec<Vec<usize>>> = None;
        for workers in [1usize, 2, 4] {
            reset_caches();
            let cfg = GroupingConfig {
                mode,
                max_group_size,
                workers,
                shard_by: ShardBy::Force,
                shard_size,
                ..GroupingConfig::default()
            };
            let groups = multi_round_grouping(&profiles, &cfg);
            check_partition(&groups, profiles.len(), max_group_size);
            match &reference {
                None => reference = Some(groups),
                Some(r) => prop_assert_eq!(
                    r,
                    &groups,
                    "sharded grouping diverged at workers={}",
                    workers
                ),
            }
        }
    }

    /// Re-running the same sharded config from cold caches reproduces
    /// the plan exactly, for every shard size — shard assembly order is
    /// a pure function of (profiles, config), never of execution state.
    #[test]
    fn sharded_grouping_is_deterministic_across_reruns_per_shard_size(
        profiles in arb_class_pool(),
        max_group_size in 2usize..=4,
    ) {
        for shard_size in [3usize, 5, 8, 16] {
            let cfg = GroupingConfig {
                max_group_size,
                shard_by: ShardBy::Force,
                shard_size,
                ..GroupingConfig::default()
            };
            reset_caches();
            let cold = multi_round_grouping(&profiles, &cfg);
            check_partition(&cold, profiles.len(), max_group_size);
            let warm = multi_round_grouping(&profiles, &cfg);
            prop_assert_eq!(&cold, &warm, "warm cache diverged at shard_size={}", shard_size);
            reset_caches();
            let recomputed = multi_round_grouping(&profiles, &cfg);
            prop_assert_eq!(&cold, &recomputed, "cold rerun diverged at shard_size={}", shard_size);
        }
    }
}
