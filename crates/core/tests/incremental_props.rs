//! Property tests for incremental re-planning (DESIGN.md §11):
//!
//! * **Certified utility bound vs the full oracle.** Across random
//!   arrival/completion sequences, every incremental pass that does not
//!   fall back must satisfy the certified bound
//!   `utility(incremental) ≥ utility(full) − min_unplanned_demand + 1`
//!   against a full cold re-plan of the same candidates; a fallback
//!   pass must match the full oracle exactly.
//! * **No stranding.** Capacity the incremental plan leaves unused
//!   never fits any unplanned candidate.
//!
//! The sequences drive a miniature cluster ledger: arrivals mark their
//! GPU class dirty and enqueue, completions mark and free capacity,
//! planning passes consume the plan (queue → running) exactly as the
//! engine does.

use std::collections::BTreeSet;

use muri_core::{
    plan_incremental_with, plan_schedule_with, IncrementalPlanner, PendingJob, PolicyKind,
    SchedulerConfig,
};
use muri_telemetry::TelemetrySink;
use muri_workload::{JobId, SimDuration, SimTime, StageProfile};
use proptest::prelude::*;

/// One step of a random daemon history.
#[derive(Debug, Clone)]
enum Op {
    /// Enqueue a job: (profile palette pick, GPU-class exponent, remaining secs).
    Arrival(usize, u32, u64),
    /// Finish a running job (index modulo the running set).
    Completion(usize),
    /// Run a planning pass and consume its plan.
    Plan,
}

fn arb_profile() -> impl Strategy<Value = StageProfile> {
    (1u64..=50, 1u64..=50, 1u64..=50, 1u64..=50).prop_map(|(s, c, g, n)| {
        StageProfile::new(
            SimDuration::from_millis(s),
            SimDuration::from_millis(c),
            SimDuration::from_millis(g),
            SimDuration::from_millis(n),
        )
    })
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    // Arrival-heavy mix (the vendored prop_oneof is unweighted, so the
    // arrival arm is listed twice).
    let arrival = || (0usize..4, 0u32..=3, 10u64..=500).prop_map(|(p, e, r)| Op::Arrival(p, e, r));
    let op = prop_oneof![
        arrival(),
        arrival(),
        (0usize..16).prop_map(Op::Completion),
        Just(Op::Plan),
    ];
    proptest::collection::vec(op, 4..=40)
}

/// Utility = Σ planned GPU demand (the certified objective).
fn utility(plan: &[muri_core::PlannedGroup]) -> u32 {
    plan.iter().map(|p| p.num_gpus).sum()
}

fn check_pass(
    cfg: &SchedulerConfig,
    queue: &[PendingJob],
    free: u32,
    now: SimTime,
    planner: &mut IncrementalPlanner,
) -> Vec<muri_core::PlannedGroup> {
    let sink = TelemetrySink::disabled();
    let out = plan_incremental_with(cfg, queue, free, now, &sink, planner);
    let full = plan_schedule_with(cfg, queue, free, now, &sink);
    let inc_utility = utility(&out.plan);
    let full_utility = utility(&full);

    let planned: BTreeSet<JobId> = out.plan.iter().flat_map(|p| p.group.job_ids()).collect();
    let used: u32 = out.plan.iter().map(|p| p.num_gpus).sum();
    prop_assert!(used <= free, "plan uses {used} of {free} free GPUs");
    let remaining = free - used;

    // No stranding: every unplanned candidate is too big for what's left.
    for c in queue {
        if !planned.contains(&c.id) {
            prop_assert!(
                c.num_gpus > remaining,
                "job {:?} ({} GPUs) stranded with {remaining} GPUs unused",
                c.id,
                c.num_gpus
            );
        }
    }

    if out.fell_back {
        // A fallback *is* the full plan: identical utility.
        prop_assert_eq!(
            inc_utility,
            full_utility,
            "fallback pass diverged from the oracle"
        );
    } else {
        // The certified bound: utility ≥ full − min_unplanned + 1.
        let min_unplanned = queue
            .iter()
            .filter(|c| !planned.contains(&c.id))
            .map(|c| c.num_gpus)
            .min()
            .unwrap_or(0);
        prop_assert!(
            inc_utility + min_unplanned >= full_utility + u32::from(min_unplanned > 0),
            "incremental utility {inc_utility} below certified bound \
             (full {full_utility}, min unplanned {min_unplanned})"
        );
    }
    out.plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_meets_certified_bound_over_random_histories(
        palette in proptest::collection::vec(arb_profile(), 4),
        ops in arb_ops(),
    ) {
        let cfg = SchedulerConfig::preset(PolicyKind::MuriL);
        let total_gpus = 16u32;
        let mut free = total_gpus;
        let mut queue: Vec<PendingJob> = Vec::new();
        let mut running: Vec<(JobId, u32)> = Vec::new();
        let mut planner = IncrementalPlanner::new();
        let mut next_id = 0u32;
        let mut now = SimTime::ZERO;

        let run_plan = |queue: &mut Vec<PendingJob>,
                            running: &mut Vec<(JobId, u32)>,
                            free: &mut u32,
                            now: SimTime,
                            planner: &mut IncrementalPlanner| {
            let plan = check_pass(&cfg, queue, *free, now, planner);
            let planned: BTreeSet<JobId> =
                plan.iter().flat_map(|p| p.group.job_ids()).collect();
            for p in &plan {
                *free -= p.num_gpus;
                for id in p.group.job_ids() {
                    let gpus = queue
                        .iter()
                        .find(|c| c.id == id)
                        .map_or(0, |c| c.num_gpus);
                    running.push((id, gpus));
                }
            }
            queue.retain(|c| !planned.contains(&c.id));
        };

        for op in ops {
            now += SimDuration::from_secs(1);
            match op {
                Op::Arrival(pick, exp, remaining_secs) => {
                    let num_gpus = 1u32 << exp;
                    queue.push(PendingJob {
                        id: JobId(next_id),
                        num_gpus,
                        profile: palette[pick % palette.len()],
                        submit_time: now,
                        attained: SimDuration::ZERO,
                        remaining: SimDuration::from_secs(remaining_secs),
                        deadline: None,
                    });
                    next_id += 1;
                    planner.mark(num_gpus);
                }
                Op::Completion(i) => {
                    if !running.is_empty() {
                        let (_, gpus) = running.remove(i % running.len());
                        free += gpus;
                        planner.mark(gpus);
                    }
                }
                Op::Plan => run_plan(&mut queue, &mut running, &mut free, now, &mut planner),
            }
        }
        // Settle the tail so every history ends with a checked pass.
        now += SimDuration::from_secs(1);
        run_plan(&mut queue, &mut running, &mut free, now, &mut planner);
    }
}
