//! Property tests for the scheduling policies: every policy must induce a
//! deterministic total order, respect its defining monotonicity, and
//! never read information it is not entitled to (duration-unaware
//! policies must be invariant to `remaining`).

use muri_core::{PendingJob, PolicyKind};
use muri_workload::{JobId, ModelKind, SimDuration, SimTime};
use proptest::prelude::*;

const ALL_POLICIES: [PolicyKind; 12] = [
    PolicyKind::Fifo,
    PolicyKind::Sjf,
    PolicyKind::Srtf,
    PolicyKind::Srsf,
    PolicyKind::Las,
    PolicyKind::TwoDLas,
    PolicyKind::Tiresias,
    PolicyKind::Gittins,
    PolicyKind::Themis,
    PolicyKind::AntMan,
    PolicyKind::MuriS,
    PolicyKind::MuriL,
];

fn arb_job() -> impl Strategy<Value = PendingJob> {
    (
        0u32..1000,
        0u32..=5,
        0u64..100_000,
        0u64..50_000,
        1u64..100_000,
        0usize..8,
    )
        .prop_map(
            |(id, gpus_exp, submit, attained, remaining, model)| PendingJob {
                id: JobId(id),
                num_gpus: 1 << gpus_exp,
                profile: ModelKind::ALL[model].profile(16),
                submit_time: SimTime::from_secs(submit),
                attained: SimDuration::from_secs(attained),
                remaining: SimDuration::from_secs(remaining),
                deadline: None,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn priorities_are_a_deterministic_total_order(
        jobs in proptest::collection::vec(arb_job(), 2..20),
        now_secs in 100_000u64..200_000,
    ) {
        let now = SimTime::from_secs(now_secs);
        for policy in ALL_POLICIES {
            // Sorting twice (and from reversed input) gives the same order
            // as long as ids are distinct.
            let mut a = jobs.clone();
            let mut b: Vec<PendingJob> = jobs.iter().rev().copied().collect();
            policy.sort(&mut a, now);
            policy.sort(&mut b, now);
            let ids = |v: &[PendingJob]| v.iter().map(|j| (j.id, j.submit_time)).collect::<Vec<_>>();
            // Identical (id, submit) pairs may tie; compare the full key.
            let keys_a: Vec<_> = a.iter().map(|j| policy.priority(j, now)).collect();
            let keys_b: Vec<_> = b.iter().map(|j| policy.priority(j, now)).collect();
            prop_assert_eq!(&keys_a, &keys_b, "{:?} not deterministic", policy);
            prop_assert!(keys_a.windows(2).all(|w| w[0] <= w[1]), "{:?} not sorted", policy);
            let _ = ids;
        }
    }

    #[test]
    fn duration_unaware_policies_ignore_remaining(job in arb_job(), extra in 1u64..100_000) {
        let now = SimTime::from_secs(500_000);
        let mut clone = job;
        clone.remaining = job.remaining + SimDuration::from_secs(extra);
        for policy in ALL_POLICIES {
            if policy.duration_aware() || policy == PolicyKind::Sjf {
                continue;
            }
            prop_assert_eq!(
                policy.priority(&job, now),
                policy.priority(&clone, now),
                "{:?} peeked at the remaining duration", policy
            );
        }
    }

    #[test]
    fn srtf_is_monotone_in_remaining(job in arb_job(), extra in 1u64..100_000) {
        let now = SimTime::ZERO;
        let mut longer = job;
        longer.remaining = job.remaining + SimDuration::from_secs(extra);
        prop_assert!(
            PolicyKind::Srtf.priority(&job, now) < PolicyKind::Srtf.priority(&longer, now)
                || job.remaining == longer.remaining
        );
    }

    #[test]
    fn las_is_monotone_in_attained(job in arb_job(), extra in 1u64..100_000) {
        let now = SimTime::ZERO;
        let mut older = job;
        older.attained = job.attained + SimDuration::from_secs(extra);
        prop_assert!(
            PolicyKind::Las.priority(&job, now) < PolicyKind::Las.priority(&older, now)
        );
    }

    #[test]
    fn muri_priorities_equal_their_base_policies(
        jobs in proptest::collection::vec(arb_job(), 1..20),
        now_secs in 0u64..1_000_000,
    ) {
        let now = SimTime::from_secs(now_secs);
        for j in &jobs {
            prop_assert_eq!(
                PolicyKind::MuriS.priority(j, now),
                PolicyKind::Srsf.priority(j, now)
            );
            prop_assert_eq!(
                PolicyKind::MuriL.priority(j, now),
                PolicyKind::TwoDLas.priority(j, now)
            );
        }
    }
}
