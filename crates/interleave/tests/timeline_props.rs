//! Property tests for the fine-grained timeline executor: arbitrary job
//! mixes must run to completion without deadlock, conserve work, respect
//! physics (never faster than solo), and keep per-slot resource busy time
//! within the elapsed span.

use muri_interleave::{run_timeline, TimelineJob};
use muri_workload::{JobId, ResourceKind, SimDuration, StageProfile};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct ArbJob {
    stages: [u64; 4],
    slots: Vec<usize>,
    delay_ms: u64,
    iterations: u64,
}

fn arb_job(num_slots: usize) -> impl Strategy<Value = ArbJob> {
    (
        proptest::array::uniform4(0u64..2_000),
        proptest::collection::btree_set(0..num_slots, 1..=num_slots.min(3)),
        0u64..3_000,
        1u64..12,
    )
        .prop_map(|(stages, slots, delay_ms, iterations)| ArbJob {
            stages,
            slots: slots.into_iter().collect(),
            delay_ms,
            iterations,
        })
}

fn to_timeline(jobs: &[ArbJob]) -> Vec<TimelineJob> {
    jobs.iter()
        .enumerate()
        .map(|(i, j)| TimelineJob {
            id: JobId(i as u32),
            profile: StageProfile::new(
                SimDuration::from_millis(j.stages[0]),
                SimDuration::from_millis(j.stages[1]),
                SimDuration::from_millis(j.stages[2]),
                SimDuration::from_millis(j.stages[3]),
            ),
            slots: j.slots.clone(),
            initial_delay: SimDuration::from_millis(j.delay_ms),
            iterations: j.iterations,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn arbitrary_mixes_complete_without_deadlock(
        jobs in proptest::collection::vec(arb_job(4), 1..6)
    ) {
        let timeline = to_timeline(&jobs);
        // Generous horizon: total serial work times a safety factor.
        let total_work: u64 = timeline
            .iter()
            .map(|j| j.profile.iteration_time().as_micros() * j.iterations * j.slots.len() as u64)
            .sum();
        let horizon = SimDuration::from_micros(total_work * 8 + 60_000_000);
        let report = run_timeline(&timeline, 4, horizon);
        prop_assert!(!report.horizon_reached,
            "deadlock or starvation: {:?}", report.completed_iterations);
        for (i, job) in timeline.iter().enumerate() {
            prop_assert_eq!(report.completed_iterations[i], job.iterations, "job {}", i);
            let finish = report.finish_time[i].expect("finished");
            // Physics: a worker cannot beat its own serial stage time.
            let solo = job.profile.iteration_time() * job.iterations;
            prop_assert!(
                finish.since(muri_workload::SimTime::ZERO + job.initial_delay) >= solo,
                "job {} finished faster than serial physics", i
            );
        }
    }

    #[test]
    fn busy_time_never_exceeds_span(
        jobs in proptest::collection::vec(arb_job(3), 1..5)
    ) {
        let timeline = to_timeline(&jobs);
        let total_work: u64 = timeline
            .iter()
            .map(|j| j.profile.iteration_time().as_micros() * j.iterations * j.slots.len() as u64)
            .sum();
        let horizon = SimDuration::from_micros(total_work * 8 + 60_000_000);
        let report = run_timeline(&timeline, 3, horizon);
        let span = report.end_time.as_micros();
        for (slot, busy) in report.busy.iter().enumerate() {
            for r in ResourceKind::ALL {
                prop_assert!(
                    busy[r].as_micros() <= span,
                    "slot {slot}/{r}: busy {} exceeds span {span}", busy[r].as_micros()
                );
            }
        }
        // Work conservation: per-slot GPU busy time equals exactly the GPU
        // demand of the workers that ran there (when everything finished).
        if !report.horizon_reached {
            let mut expected = [0u64; 3];
            for job in &timeline {
                for &s in &job.slots {
                    expected[s] += job.profile.duration(ResourceKind::Gpu).as_micros()
                        * job.iterations;
                }
            }
            for (slot, want) in expected.iter().enumerate() {
                prop_assert_eq!(
                    report.busy[slot][ResourceKind::Gpu].as_micros(),
                    *want,
                    "slot {} GPU busy mismatch", slot
                );
            }
        }
    }

    #[test]
    fn timeline_is_deterministic(jobs in proptest::collection::vec(arb_job(2), 1..4)) {
        let timeline = to_timeline(&jobs);
        let horizon = SimDuration::from_hours(2);
        let a = run_timeline(&timeline, 2, horizon);
        let b = run_timeline(&timeline, 2, horizon);
        prop_assert_eq!(a, b);
    }
}
