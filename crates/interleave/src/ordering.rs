//! Stage-ordering enumeration (the paper's Fig. 6 / §4.2).
//!
//! "Given multiple resources, there are several orderings to interleave
//! two jobs, and different orderings have different interleaving
//! efficiency. … we enumerate all the orderings to find the best one."
//!
//! An ordering is an assignment of distinct phase offsets to the jobs of a
//! group over the group's effective resource cycle
//! ([`crate::efficiency::effective_cycle`]). Eq. 3 is rotation-invariant
//! (shifting every offset by a constant permutes the phase sum), so the
//! first job is pinned to offset 0 and the rest are enumerated: at most
//! `(k−1)!/(k−p)! ≤ 6` assignments for `k = 4`, cheap enough to do exactly
//! — as the paper notes.

use crate::efficiency::{
    effective_cycle, effective_cycle_buf, group_efficiency, group_efficiency_on_cycle,
    group_iteration_time_on_cycle,
};
use muri_workload::{ResourceKind, SimDuration, StageProfile, NUM_RESOURCES};
use serde::{Deserialize, Serialize};

/// How a group picks its stage ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum OrderingPolicy {
    /// Enumerate all orderings and take the one minimizing the group
    /// iteration time (the paper's design).
    #[default]
    Best,
    /// Take the ordering *maximizing* iteration time — the paper's
    /// "Muri-L with worst ordering" ablation (Fig. 11).
    Worst,
    /// The canonical assignment `o_i = i` without enumeration
    /// (Eq. 3 as literally written).
    Canonical,
}

/// The chosen ordering for a group: the effective cycle, distinct phase
/// offsets per job, and the resulting group iteration time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChosenOrdering {
    /// The effective resource cycle the offsets index into.
    pub cycle: Vec<ResourceKind>,
    /// `offsets[i]` is the phase offset of the group's `i`-th job.
    pub offsets: Vec<usize>,
    /// Group per-iteration time under these offsets (Eq. 3).
    pub iteration_time: SimDuration,
}

/// Precomputed assignment tables for every `(p, k)` with `p ≤ k ≤ 4`, in
/// the exact depth-first order the recursive enumerator produces (ties in
/// the Best/Worst search are broken by "first enumerated wins", so the
/// order is observable). With `k ≤ NUM_RESOURCES = 4` there are at most
/// six assignments of length at most four, so the whole search space fits
/// in a handful of static slices and the hot path never allocates.
const ASSIGN_P0: &[&[usize]] = &[&[]];
const ASSIGN_P1: &[&[usize]] = &[&[0]];
const ASSIGN_P2_K2: &[&[usize]] = &[&[0, 1]];
const ASSIGN_P2_K3: &[&[usize]] = &[&[0, 1], &[0, 2]];
const ASSIGN_P2_K4: &[&[usize]] = &[&[0, 1], &[0, 2], &[0, 3]];
const ASSIGN_P3_K3: &[&[usize]] = &[&[0, 1, 2], &[0, 2, 1]];
const ASSIGN_P3_K4: &[&[usize]] = &[
    &[0, 1, 2],
    &[0, 1, 3],
    &[0, 2, 1],
    &[0, 2, 3],
    &[0, 3, 1],
    &[0, 3, 2],
];
const ASSIGN_P4_K4: &[&[usize]] = &[
    &[0, 1, 2, 3],
    &[0, 1, 3, 2],
    &[0, 2, 1, 3],
    &[0, 2, 3, 1],
    &[0, 3, 1, 2],
    &[0, 3, 2, 1],
];

/// The static assignment table for `(p, k)`, or `None` when `k` exceeds
/// the canonical cycle length and the recursive enumerator must run.
fn assignment_table(p: usize, k: usize) -> Option<&'static [&'static [usize]]> {
    Some(match (p, k) {
        (0, _) => ASSIGN_P0,
        (1, 1..=4) => ASSIGN_P1,
        (2, 2) => ASSIGN_P2_K2,
        (2, 3) => ASSIGN_P2_K3,
        (2, 4) => ASSIGN_P2_K4,
        (3, 3) => ASSIGN_P3_K3,
        (3, 4) => ASSIGN_P3_K4,
        (4, 4) => ASSIGN_P4_K4,
        _ => return None,
    })
}

/// Enumerate every distinct-offset assignment for `p` jobs over a cycle of
/// length `k`, with the first job pinned to offset 0. Returns `[[]]` for
/// `p = 0`. Panics if `p > k`.
pub fn enumerate_assignments(p: usize, k: usize) -> Vec<Vec<usize>> {
    assert!(
        p <= k,
        "cannot give {p} jobs distinct offsets over a {k}-cycle"
    );
    assert!(p <= NUM_RESOURCES, "at most {NUM_RESOURCES} jobs per group");
    if let Some(table) = assignment_table(p, k) {
        return table.iter().map(|a| a.to_vec()).collect();
    }
    if p == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    let mut current = vec![0usize];
    let mut used = vec![false; k];
    used[0] = true;
    fn rec(
        p: usize,
        k: usize,
        current: &mut Vec<usize>,
        used: &mut [bool],
        out: &mut Vec<Vec<usize>>,
    ) {
        if current.len() == p {
            out.push(current.clone());
            return;
        }
        for o in 1..k {
            if !used[o] {
                used[o] = true;
                current.push(o);
                rec(p, k, current, used, out);
                current.pop();
                used[o] = false;
            }
        }
    }
    rec(p, k, &mut current, &mut used, &mut out);
    out
}

/// Identity offsets `[0, 1, 2, 3]`, sliced for `Canonical` orderings.
const IDENTITY_OFFSETS: [usize; NUM_RESOURCES] = [0, 1, 2, 3];

/// Search the static assignment table for the offsets optimizing the
/// group iteration time (minimizing for `Best`, maximizing for `Worst`).
/// Ties break toward the first enumerated assignment, exactly like the
/// allocating search in [`choose_ordering`].
fn search_assignments(
    profiles: &[StageProfile],
    cycle: &[ResourceKind],
    policy: OrderingPolicy,
) -> (&'static [usize], SimDuration) {
    // The effective cycle never exceeds NUM_RESOURCES, so the table
    // always exists and is non-empty for 1 ≤ p ≤ k.
    let table = assignment_table(profiles.len(), cycle.len()).unwrap_or(ASSIGN_P0);
    let mut it = table.iter();
    let first = it.next().copied().unwrap_or(&[]);
    let mut best = (first, group_iteration_time_on_cycle(profiles, first, cycle));
    for &offsets in it {
        let t = group_iteration_time_on_cycle(profiles, offsets, cycle);
        let better = match policy {
            OrderingPolicy::Best => t < best.1,
            OrderingPolicy::Worst => t > best.1,
            OrderingPolicy::Canonical => false,
        };
        if better {
            best = (offsets, t);
        }
    }
    best
}

/// Interleaving efficiency γ of `profiles` under `policy`, computed
/// without heap allocation: the effective cycle lives on the stack and
/// the ordering search walks the precomputed assignment tables. Returns
/// exactly `group_efficiency(profiles, &choose_ordering(profiles,
/// policy).offsets)`, and 0 for an empty group.
pub fn policy_efficiency(profiles: &[StageProfile], policy: OrderingPolicy) -> f64 {
    assert!(
        profiles.len() <= NUM_RESOURCES,
        "group of {} exceeds k = {NUM_RESOURCES}",
        profiles.len()
    );
    if profiles.is_empty() {
        return 0.0;
    }
    let (kinds, k) = effective_cycle_buf(profiles);
    let cycle = &kinds[..k];
    let offsets: &[usize] = match policy {
        OrderingPolicy::Canonical => &IDENTITY_OFFSETS[..profiles.len()],
        OrderingPolicy::Best | OrderingPolicy::Worst => {
            search_assignments(profiles, cycle, policy).0
        }
    };
    group_efficiency_on_cycle(profiles, offsets, cycle)
}

/// Choose an ordering for `profiles` according to `policy`.
pub fn choose_ordering(profiles: &[StageProfile], policy: OrderingPolicy) -> ChosenOrdering {
    assert!(
        profiles.len() <= NUM_RESOURCES,
        "group of {} exceeds k = {NUM_RESOURCES}",
        profiles.len()
    );
    let cycle = effective_cycle(profiles);
    if profiles.is_empty() {
        return ChosenOrdering {
            cycle,
            offsets: Vec::new(),
            iteration_time: SimDuration::ZERO,
        };
    }
    match policy {
        OrderingPolicy::Canonical => {
            let offsets: Vec<usize> = (0..profiles.len()).collect();
            let iteration_time = group_iteration_time_on_cycle(profiles, &offsets, &cycle);
            ChosenOrdering {
                cycle,
                offsets,
                iteration_time,
            }
        }
        OrderingPolicy::Best | OrderingPolicy::Worst => {
            let (offsets, iteration_time) = search_assignments(profiles, &cycle, policy);
            ChosenOrdering {
                cycle,
                offsets: offsets.to_vec(),
                iteration_time,
            }
        }
    }
}

/// Group efficiency under a chosen ordering (convenience for callers that
/// already ran [`choose_ordering`]).
pub fn ordering_efficiency(profiles: &[StageProfile], ordering: &ChosenOrdering) -> f64 {
    group_efficiency(profiles, &ordering.offsets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use muri_workload::SimDuration;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn assignment_counts() {
        assert_eq!(enumerate_assignments(0, 4).len(), 1);
        assert_eq!(enumerate_assignments(1, 4).len(), 1);
        assert_eq!(enumerate_assignments(2, 4).len(), 3);
        assert_eq!(enumerate_assignments(3, 4).len(), 6);
        assert_eq!(enumerate_assignments(4, 4).len(), 6);
        assert_eq!(enumerate_assignments(2, 2).len(), 1);
        assert_eq!(enumerate_assignments(2, 3).len(), 2);
    }

    #[test]
    fn assignments_are_distinct_offsets() {
        for k in 1..=4usize {
            for p in 1..=k {
                for a in enumerate_assignments(p, k) {
                    assert_eq!(a[0], 0, "first job pinned to offset 0");
                    let mut sorted = a.clone();
                    sorted.sort_unstable();
                    sorted.dedup();
                    assert_eq!(sorted.len(), p, "distinct offsets in {a:?}");
                    assert!(sorted.iter().all(|&o| o < k));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "distinct offsets")]
    fn oversized_group_rejected() {
        let _ = enumerate_assignments(3, 2);
    }

    #[test]
    fn best_beats_worst_on_figure6() {
        // Fig. 6's two jobs (all four resources in use): best T=5, worst T=6.
        let a = StageProfile::new(secs(1), secs(2), secs(1), secs(1));
        let b = StageProfile::new(secs(1), secs(1), secs(2), secs(1));
        let best = choose_ordering(&[a, b], OrderingPolicy::Best);
        let worst = choose_ordering(&[a, b], OrderingPolicy::Worst);
        assert_eq!(best.iteration_time, secs(5));
        assert_eq!(worst.iteration_time, secs(6));
        assert_eq!(best.cycle.len(), 4);
    }

    #[test]
    fn two_resource_pair_uses_short_cycle() {
        // Fig. 4's A and B only use CPU+GPU: the chosen ordering runs on a
        // 2-cycle and recovers the paper's T = 3.
        let a = StageProfile::new(SimDuration::ZERO, secs(2), secs(1), SimDuration::ZERO);
        let b = StageProfile::new(SimDuration::ZERO, secs(1), secs(2), SimDuration::ZERO);
        let best = choose_ordering(&[a, b], OrderingPolicy::Best);
        assert_eq!(best.cycle.len(), 2);
        assert_eq!(best.iteration_time, secs(3));
    }

    #[test]
    fn canonical_uses_identity_offsets() {
        let p = StageProfile::from_secs_f64(1.0, 1.0, 1.0, 1.0);
        let c = choose_ordering(&[p, p, p], OrderingPolicy::Canonical);
        assert_eq!(c.offsets, vec![0, 1, 2]);
    }

    #[test]
    fn best_is_lower_bound_over_all_assignments() {
        let a = StageProfile::new(secs(3), secs(1), secs(4), secs(2));
        let b = StageProfile::new(secs(1), secs(5), secs(1), secs(1));
        let c = StageProfile::new(secs(2), secs(2), secs(2), secs(6));
        let best = choose_ordering(&[a, b, c], OrderingPolicy::Best);
        for offsets in enumerate_assignments(3, best.cycle.len()) {
            assert!(
                group_iteration_time_on_cycle(&[a, b, c], &offsets, &best.cycle)
                    >= best.iteration_time
            );
        }
    }

    #[test]
    fn assignment_tables_match_recursive_enumeration() {
        // The static tables must reproduce the recursive DFS order exactly
        // (the Best/Worst tie-break depends on enumeration order).
        fn reference(p: usize, k: usize) -> Vec<Vec<usize>> {
            if p == 0 {
                return vec![Vec::new()];
            }
            let mut out = Vec::new();
            let mut current = vec![0usize];
            let mut used = vec![false; k];
            used[0] = true;
            fn rec(
                p: usize,
                k: usize,
                cur: &mut Vec<usize>,
                used: &mut [bool],
                out: &mut Vec<Vec<usize>>,
            ) {
                if cur.len() == p {
                    out.push(cur.clone());
                    return;
                }
                for o in 1..k {
                    if !used[o] {
                        used[o] = true;
                        cur.push(o);
                        rec(p, k, cur, used, out);
                        cur.pop();
                        used[o] = false;
                    }
                }
            }
            rec(p, k, &mut current, &mut used, &mut out);
            out
        }
        for k in 1..=4usize {
            for p in 0..=k {
                assert_eq!(
                    enumerate_assignments(p, k),
                    reference(p, k),
                    "table mismatch at p={p} k={k}"
                );
            }
        }
    }

    #[test]
    fn policy_efficiency_matches_choose_ordering() {
        let profiles = [
            StageProfile::new(secs(3), secs(1), secs(4), secs(2)),
            StageProfile::new(secs(1), secs(5), secs(1), secs(1)),
            StageProfile::new(secs(2), secs(2), secs(2), secs(6)),
            StageProfile::new(SimDuration::ZERO, secs(2), secs(1), SimDuration::ZERO),
        ];
        for policy in [
            OrderingPolicy::Best,
            OrderingPolicy::Worst,
            OrderingPolicy::Canonical,
        ] {
            for len in 0..=profiles.len() {
                let ps = &profiles[..len];
                let chosen = choose_ordering(ps, policy);
                let via_chosen = group_efficiency(ps, &chosen.offsets);
                let direct = policy_efficiency(ps, policy);
                assert_eq!(
                    direct.to_bits(),
                    via_chosen.to_bits(),
                    "{policy:?} len={len}: {direct} vs {via_chosen}"
                );
            }
        }
    }

    #[test]
    fn empty_group_ordering() {
        let c = choose_ordering(&[], OrderingPolicy::Best);
        assert!(c.offsets.is_empty());
        assert_eq!(c.iteration_time, SimDuration::ZERO);
    }

    #[test]
    fn singleton_ordering_is_serial_time() {
        let p = StageProfile::new(secs(1), secs(2), secs(3), secs(4));
        for policy in [
            OrderingPolicy::Best,
            OrderingPolicy::Worst,
            OrderingPolicy::Canonical,
        ] {
            let c = choose_ordering(&[p], policy);
            assert_eq!(c.iteration_time, p.iteration_time(), "{policy:?}");
        }
    }
}
