//! Interleaving efficiency — the paper's Eq. 1–4.
//!
//! A group of jobs is interleaved by giving each job a distinct *phase
//! offset* in a resource cycle: the job with offset `o` executes its stage
//! on the cycle's `(o + ℓ) mod k`-th resource during phase `ℓ`. Phase `ℓ`
//! lasts as long as the slowest stage scheduled in it, and the group's
//! per-iteration time is the sum of the phase lengths:
//!
//! ```text
//! T = Σ_{ℓ}  max_i  t_i^{cycle[(o_i + ℓ) mod k]}           (Eq. 3)
//! ```
//!
//! The interleaving efficiency is one minus the average idle fraction over
//! the cycle's resources:
//!
//! ```text
//! γ = 1 − (1/k) Σ_j (T − Σ_i t_i^j) / T                    (Eq. 4)
//! ```
//!
//! **The effective cycle.** The paper writes Eq. 3 over all `k` resource
//! types, but computes its two-resource examples (Fig. 4: γ(A,B) = 1,
//! γ(A,C) = 0.75; Eq. 1/2) over a two-resource cycle. The two views differ
//! when jobs have zero-duration stages: a literal 4-cycle inserts dead
//! phases between a two-resource job's stages and can no longer align job
//! A's CPU stage with job B's GPU stage. We therefore interleave over the
//! **effective cycle**: the resources actually used by at least one group
//! member, in canonical order, padded with unused resources (still in
//! canonical order) when the group has more members than used resources.
//! On two-resource profiles this reduces exactly to Eq. 1/2; on
//! four-stage profiles it is exactly the literal Eq. 3/4. Every cyclic
//! subsequence of the canonical cycle preserves each job's stage order, so
//! the schedule remains executable.
//!
//! Because offsets are distinct, each resource hosts at most one job per
//! phase, so `Σ_i t_i^j ≤ T` and `γ ∈ [0, 1]` (property-tested).

use muri_workload::{ResourceKind, SimDuration, StageProfile, NUM_RESOURCES};

/// The effective resource cycle for a group: resources used by at least
/// one member, in canonical order, padded with unused resources (canonical
/// order) until the cycle is at least as long as the group. Returns a
/// single-resource cycle for an all-empty group.
pub fn effective_cycle(profiles: &[StageProfile]) -> Vec<ResourceKind> {
    let (kinds, len) = effective_cycle_buf(profiles);
    kinds[..len].to_vec()
}

/// Allocation-free [`effective_cycle`]: the cycle is returned on the
/// stack as a fixed array plus its length. The grouping hot path calls
/// this once per candidate pair, so it must not touch the heap.
pub(crate) fn effective_cycle_buf(
    profiles: &[StageProfile],
) -> ([ResourceKind; NUM_RESOURCES], usize) {
    let mut kinds = [ResourceKind::Storage; NUM_RESOURCES];
    let mut len = 0;
    for r in ResourceKind::ALL {
        if profiles.iter().any(|p| !p.duration(r).is_zero()) {
            kinds[len] = r;
            len += 1;
        }
    }
    if len < profiles.len() {
        // Pad with unused resources, then restore canonical order.
        for r in ResourceKind::ALL {
            if len >= profiles.len() {
                break;
            }
            if !kinds[..len].contains(&r) {
                kinds[len] = r;
                len += 1;
            }
        }
        kinds[..len].sort_unstable_by_key(|r| r.index());
    }
    if len == 0 {
        kinds[0] = ResourceKind::Storage;
        len = 1;
    }
    (kinds, len)
}

/// Per-iteration time of a group under a phase-offset assignment over its
/// effective cycle (Eq. 3). `offsets[i]` is job `i`'s offset; offsets must
/// be distinct modulo the cycle length and `profiles.len()` must not
/// exceed it.
pub fn group_iteration_time(profiles: &[StageProfile], offsets: &[usize]) -> SimDuration {
    let cycle = effective_cycle(profiles);
    group_iteration_time_on_cycle(profiles, offsets, &cycle)
}

/// Eq. 3 over an explicit cycle (exposed for the ordering enumerator and
/// the timeline's stagger computation, which must agree on the cycle).
pub fn group_iteration_time_on_cycle(
    profiles: &[StageProfile],
    offsets: &[usize],
    cycle: &[ResourceKind],
) -> SimDuration {
    check_assignment(profiles.len(), offsets, cycle.len());
    let k = cycle.len();
    let mut total = SimDuration::ZERO;
    for phase in 0..k {
        let mut longest = SimDuration::ZERO;
        for (p, &o) in profiles.iter().zip(offsets) {
            let r = cycle[(o + phase) % k];
            longest = longest.max(p.duration(r));
        }
        total += longest;
    }
    total
}

/// Interleaving efficiency of a group under a phase assignment (Eq. 4),
/// averaged over the effective cycle's resources. Returns 0 for a group
/// whose iteration time is zero.
pub fn group_efficiency(profiles: &[StageProfile], offsets: &[usize]) -> f64 {
    let (kinds, len) = effective_cycle_buf(profiles);
    group_efficiency_on_cycle(profiles, offsets, &kinds[..len])
}

/// Eq. 4 over an explicit cycle (exposed for callers that already hold
/// the effective cycle, like the ordering search, and must not recompute
/// or reallocate it).
pub fn group_efficiency_on_cycle(
    profiles: &[StageProfile],
    offsets: &[usize],
    cycle: &[ResourceKind],
) -> f64 {
    let t = group_iteration_time_on_cycle(profiles, offsets, cycle).as_secs_f64();
    if t == 0.0 {
        return 0.0;
    }
    let mut idle_sum = 0.0;
    for &r in cycle {
        let busy: f64 = profiles.iter().map(|p| p.duration(r).as_secs_f64()).sum();
        idle_sum += (t - busy) / t;
    }
    1.0 - idle_sum / cycle.len() as f64
}

/// The paper's two-resource pair formula (Eq. 1):
/// `T = max(t₀⁰, t₁¹) + max(t₀¹, t₁⁰)`. Equals [`group_iteration_time`]
/// under the best ordering for profiles using exactly those two resources.
pub fn pair_iteration_time_two_resources(
    t0: (SimDuration, SimDuration),
    t1: (SimDuration, SimDuration),
) -> SimDuration {
    t0.0.max(t1.1) + t0.1.max(t1.0)
}

/// The two-resource pair efficiency (Eq. 2).
pub fn pair_efficiency_two_resources(
    t0: (SimDuration, SimDuration),
    t1: (SimDuration, SimDuration),
) -> f64 {
    let t = pair_iteration_time_two_resources(t0, t1).as_secs_f64();
    if t == 0.0 {
        return 0.0;
    }
    let idle0 = (t - t0.0.as_secs_f64() - t1.0.as_secs_f64()) / t;
    let idle1 = (t - t0.1.as_secs_f64() - t1.1.as_secs_f64()) / t;
    1.0 - (idle0 + idle1) / 2.0
}

fn check_assignment(p: usize, offsets: &[usize], k: usize) {
    debug_assert_eq!(p, offsets.len(), "one offset per job");
    debug_assert!(
        p <= k.max(1) || p == 0,
        "at most k jobs per group (got {p} jobs for k={k})"
    );
    debug_assert!(
        offsets.iter().all(|&o| offsets
            .iter()
            .filter(|&&x| x % k.max(1) == o % k.max(1))
            .count()
            == 1),
        "offsets must be distinct mod {k}: {offsets:?}"
    );
    debug_assert!(
        p <= NUM_RESOURCES,
        "groups larger than {NUM_RESOURCES} are not supported"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    /// Profile with only CPU and GPU stages, as in the paper's Fig. 4
    /// (two resource types).
    fn cpu_gpu(cpu: u64, gpu: u64) -> StageProfile {
        StageProfile::new(SimDuration::ZERO, secs(cpu), secs(gpu), SimDuration::ZERO)
    }

    #[test]
    fn effective_cycle_tracks_used_resources() {
        let two = cpu_gpu(1, 1);
        assert_eq!(
            effective_cycle(&[two, two]),
            vec![ResourceKind::Cpu, ResourceKind::Gpu]
        );
        let four = StageProfile::new(secs(1), secs(1), secs(1), secs(1));
        assert_eq!(effective_cycle(&[four]).len(), 4);
        // Mixed: union of used resources.
        let io_only = StageProfile::new(
            secs(1),
            SimDuration::ZERO,
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        assert_eq!(
            effective_cycle(&[two, io_only]),
            vec![ResourceKind::Storage, ResourceKind::Cpu, ResourceKind::Gpu]
        );
        // Empty group gets a degenerate 1-cycle.
        assert_eq!(effective_cycle(&[]).len(), 1);
    }

    #[test]
    fn effective_cycle_pads_for_oversize_groups() {
        // Three jobs that all use only CPU+GPU: pad the cycle to length 3
        // with the first unused canonical resource (storage).
        let p = cpu_gpu(1, 1);
        let cycle = effective_cycle(&[p, p, p]);
        assert_eq!(
            cycle,
            vec![ResourceKind::Storage, ResourceKind::Cpu, ResourceKind::Gpu]
        );
    }

    #[test]
    fn figure4_grouping_a_b_is_perfect() {
        // Job A: 2 CPU + 1 GPU; job B: 1 CPU + 2 GPU. The effective cycle
        // is (cpu, gpu); offset assignment (0, 1) aligns A's CPU with B's
        // GPU: T = max(2,2) + max(1,1) = 3, γ = 1 — the paper's numbers.
        let a = cpu_gpu(2, 1);
        let b = cpu_gpu(1, 2);
        let t = group_iteration_time(&[a, b], &[0, 1]);
        assert_eq!(t, secs(3));
        let gamma = group_efficiency(&[a, b], &[0, 1]);
        assert!(
            (gamma - 1.0).abs() < 1e-12,
            "paper: γ(A,B) = 1, got {gamma}"
        );
    }

    #[test]
    fn figure4_grouping_a_c_is_imperfect() {
        // Both A and C: 2 CPU + 1 GPU. T = 4, γ = 0.75 (paper).
        let a = cpu_gpu(2, 1);
        let c = cpu_gpu(2, 1);
        let t = group_iteration_time(&[a, c], &[0, 1]);
        assert_eq!(t, secs(4));
        let gamma = group_efficiency(&[a, c], &[0, 1]);
        assert!(
            (gamma - 0.75).abs() < 1e-12,
            "paper: γ(A,C) = 0.75, got {gamma}"
        );
    }

    #[test]
    fn eq1_equals_general_formula_on_two_resource_profiles() {
        for (a_cpu, a_gpu, b_cpu, b_gpu) in [
            (2u64, 1u64, 1u64, 2u64),
            (3, 3, 1, 5),
            (7, 2, 2, 7),
            (1, 1, 1, 1),
        ] {
            let a = cpu_gpu(a_cpu, a_gpu);
            let b = cpu_gpu(b_cpu, b_gpu);
            let general = group_iteration_time(&[a, b], &[0, 1]);
            let eq1 = pair_iteration_time_two_resources(
                (secs(a_cpu), secs(a_gpu)),
                (secs(b_cpu), secs(b_gpu)),
            );
            assert_eq!(general, eq1, "profiles ({a_cpu},{a_gpu}) ({b_cpu},{b_gpu})");
            let g_eff = group_efficiency(&[a, b], &[0, 1]);
            let eq2 = pair_efficiency_two_resources(
                (secs(a_cpu), secs(a_gpu)),
                (secs(b_cpu), secs(b_gpu)),
            );
            assert!((g_eff - eq2).abs() < 1e-12);
        }
    }

    #[test]
    fn figure6_orderings_differ() {
        // Fig. 6: job A spends 2 units on CPU and 1 on the rest; job B
        // spends 2 on GPU and 1 on the rest. All four resources are used,
        // so the cycle is the full canonical cycle and Eq. 3 applies
        // literally. Best ordering T = 5; a worse ordering T = 6.
        let a = StageProfile::new(secs(1), secs(2), secs(1), secs(1));
        let b = StageProfile::new(secs(1), secs(1), secs(2), secs(1));
        let best = group_iteration_time(&[a, b], &[1, 2]);
        assert_eq!(best, secs(5));
        let worse = group_iteration_time(&[a, b], &[1, 0]);
        assert!(worse > best, "bad ordering {worse} must exceed best {best}");
        assert!(group_efficiency(&[a, b], &[1, 2]) > group_efficiency(&[a, b], &[1, 0]));
    }

    #[test]
    fn singleton_group_time_is_serial_iteration() {
        let p = StageProfile::new(secs(1), secs(2), secs(3), secs(4));
        assert_eq!(group_iteration_time(&[p], &[0]), p.iteration_time());
        // Each resource idle (10 - t_j)/10; avg idle = (9+8+7+6)/40 = 0.75.
        let gamma = group_efficiency(&[p], &[0]);
        assert!((gamma - 0.25).abs() < 1e-12);
    }

    #[test]
    fn group_time_invariant_under_offset_rotation() {
        let a = StageProfile::new(secs(3), secs(1), secs(4), secs(1));
        let b = StageProfile::new(secs(5), secs(9), secs(2), secs(6));
        let c = StageProfile::new(secs(2), secs(2), secs(2), secs(2));
        let t0 = group_iteration_time(&[a, b, c], &[0, 1, 2]);
        let t1 = group_iteration_time(&[a, b, c], &[1, 2, 3]);
        let t2 = group_iteration_time(&[a, b, c], &[2, 3, 0]);
        assert_eq!(t0, t1);
        assert_eq!(t1, t2);
    }

    #[test]
    fn four_complementary_jobs_reach_full_efficiency() {
        // Figure 1's ideal: four jobs with uniform 1s stages on all four
        // resources; with distinct offsets every phase keeps every
        // resource busy — γ = 1.
        let p = StageProfile::new(secs(1), secs(1), secs(1), secs(1));
        let profiles = vec![p; 4];
        let t = group_iteration_time(&profiles, &[0, 1, 2, 3]);
        assert_eq!(t, secs(4));
        let gamma = group_efficiency(&profiles, &[0, 1, 2, 3]);
        assert!((gamma - 1.0).abs() < 1e-12, "γ = {gamma}");
    }

    #[test]
    fn empty_group_is_degenerate() {
        assert_eq!(group_iteration_time(&[], &[]), SimDuration::ZERO);
        assert_eq!(group_efficiency(&[], &[]), 0.0);
    }

    #[test]
    fn busy_time_never_exceeds_iteration_time() {
        // The invariant behind γ ∈ [0,1]: distinct offsets mean each
        // resource hosts at most one stage per phase.
        let a = StageProfile::new(secs(3), secs(1), secs(4), secs(2));
        let b = StageProfile::new(secs(1), secs(5), secs(1), secs(1));
        let c = StageProfile::new(secs(2), secs(2), secs(2), secs(6));
        let t = group_iteration_time(&[a, b, c], &[0, 1, 2]);
        for r in ResourceKind::ALL {
            let busy = a.duration(r) + b.duration(r) + c.duration(r);
            assert!(busy <= t, "{r}: busy {busy} > T {t}");
        }
        let gamma = group_efficiency(&[a, b, c], &[0, 1, 2]);
        assert!((0.0..=1.0).contains(&gamma));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    #[cfg(debug_assertions)]
    fn duplicate_offsets_rejected() {
        let p = StageProfile::from_secs_f64(1.0, 1.0, 1.0, 1.0);
        let _ = group_iteration_time(&[p, p], &[1, 1]);
    }
}
