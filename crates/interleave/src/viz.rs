//! ASCII rendering of interleaved schedules — the repo's version of the
//! paper's Fig. 1/4/6 timeline diagrams, generated from real groups.
//!
//! One row per resource, one column per time cell; each cell shows which
//! member occupies the resource during that slice of the lockstep
//! schedule (`A`–`D` by member position, `.` for idle).

use crate::group::InterleaveGroup;
use muri_workload::SimDuration;

/// Render `iterations` lockstep iterations of a group as an ASCII chart.
/// `cells_per_iteration` controls horizontal resolution.
pub fn render_schedule(
    group: &InterleaveGroup,
    iterations: usize,
    cells_per_iteration: usize,
) -> String {
    let t_iter = group.iteration_time();
    if group.is_empty() || t_iter.is_zero() || cells_per_iteration == 0 {
        return String::from("(empty schedule)\n");
    }
    let cycle = &group.ordering.cycle;
    let k = cycle.len();
    // Phase boundaries within one iteration.
    let phase_len: Vec<SimDuration> = (0..k)
        .map(|phase| {
            group
                .members
                .iter()
                .zip(&group.ordering.offsets)
                .map(|(m, &o)| m.profile.duration(cycle[(o + phase) % k]))
                .max()
                .unwrap_or(SimDuration::ZERO)
        })
        .collect();
    let total_cells = cells_per_iteration * iterations;
    let cell_us = (t_iter.as_micros() * iterations as u64) / total_cells.max(1) as u64;
    let mut out = String::new();
    for (row, &resource) in cycle.iter().enumerate() {
        out.push_str(&format!("{:<8} |", resource.to_string()));
        for cell in 0..total_cells {
            let t_us = cell as u64 * cell_us + cell_us / 2;
            let within = t_us % t_iter.as_micros().max(1);
            // Which phase is active at `within`?
            let mut acc = 0u64;
            let mut phase = k - 1;
            for (p, len) in phase_len.iter().enumerate() {
                if within < acc + len.as_micros() {
                    phase = p;
                    break;
                }
                acc += len.as_micros();
            }
            // Which member uses `resource` during `phase`? Member i uses
            // cycle[(o_i + phase) % k].
            let mut ch = '.';
            let elapsed_in_phase = within.saturating_sub(acc);
            for (i, (m, &o)) in group
                .members
                .iter()
                .zip(&group.ordering.offsets)
                .enumerate()
            {
                // Member i runs on cycle[(o_i + phase) % k] during `phase`,
                // busy for its own stage duration within the phase.
                if (o + phase) % k == row
                    && elapsed_in_phase < m.profile.duration(resource).as_micros()
                {
                    ch = (b'A' + (i % 26) as u8) as char;
                }
            }
            out.push(ch);
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "(one iteration = {}, {} member{}, efficiency {:.2})\n",
        t_iter,
        group.len(),
        if group.len() == 1 { "" } else { "s" },
        group.efficiency
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::GroupMember;
    use crate::ordering::OrderingPolicy;
    use muri_workload::{JobId, StageProfile};

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn pair() -> InterleaveGroup {
        InterleaveGroup::form(
            vec![
                GroupMember {
                    job: JobId(0),
                    profile: StageProfile::new(
                        SimDuration::ZERO,
                        secs(2),
                        secs(1),
                        SimDuration::ZERO,
                    ),
                },
                GroupMember {
                    job: JobId(1),
                    profile: StageProfile::new(
                        SimDuration::ZERO,
                        secs(1),
                        secs(2),
                        SimDuration::ZERO,
                    ),
                },
            ],
            OrderingPolicy::Best,
        )
    }

    #[test]
    fn renders_one_row_per_cycle_resource() {
        let s = render_schedule(&pair(), 2, 12);
        let rows: Vec<&str> = s.lines().collect();
        // cpu + gpu rows + the footer.
        assert_eq!(rows.len(), 3, "{s}");
        assert!(rows[0].starts_with("cpu"));
        assert!(rows[1].starts_with("gpu"));
        assert!(rows[2].contains("efficiency 1.00"));
    }

    #[test]
    fn perfect_pair_has_no_idle_cells() {
        // Fig. 4's A+B: every cell on both resources is occupied.
        let s = render_schedule(&pair(), 3, 9);
        for line in s.lines().take(2) {
            let cells: String = line.chars().skip_while(|&c| c != '|').skip(1).collect();
            assert!(
                !cells.contains('.'),
                "idle cell in perfect schedule: {line}"
            );
            assert!(cells.contains('A') && cells.contains('B'), "{line}");
        }
    }

    #[test]
    fn solo_job_alternates_resource_rows() {
        let solo = InterleaveGroup::solo(GroupMember {
            job: JobId(7),
            profile: StageProfile::new(SimDuration::ZERO, secs(1), secs(1), SimDuration::ZERO),
        });
        let s = render_schedule(&solo, 1, 8);
        // Half of each row busy, half idle.
        for line in s.lines().take(2) {
            let cells: String = line.chars().skip_while(|&c| c != '|').skip(1).collect();
            assert!(cells.contains('A') && cells.contains('.'), "{line}");
        }
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let empty = InterleaveGroup::form(Vec::new(), OrderingPolicy::Best);
        assert!(render_schedule(&empty, 2, 8).contains("empty"));
        assert!(render_schedule(&pair(), 1, 0).contains("empty"));
    }
}
