//! # muri-interleave
//!
//! The multi-resource interleaving engine of the Muri reproduction:
//!
//! * [`efficiency`] — the paper's Eq. 1–4 (group iteration time and
//!   interleaving efficiency);
//! * [`ordering`] — stage-ordering enumeration (Fig. 6) with best / worst /
//!   canonical policies (worst is the Fig. 11 ablation);
//! * [`group`] — formed interleave groups with per-member slowdowns and
//!   normalized throughputs;
//! * [`contention`] — the interference model for baselines that co-locate
//!   jobs on one resource;
//! * [`timeline`] — a fine-grained per-GPU stage-timeline executor with
//!   intra-job synchronization barriers and inter-job resource queues,
//!   validating Eq. 3 and reproducing the Fig. 7 cascade.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod contention;
pub mod efficiency;
pub mod fuse;
pub mod group;
pub mod model_parallel;
pub mod ordering;
pub mod pipeline;
pub mod timeline;
pub mod viz;

pub use contention::InterferenceModel;
pub use efficiency::{
    group_efficiency, group_efficiency_on_cycle, group_iteration_time,
    pair_efficiency_two_resources, pair_iteration_time_two_resources,
};
pub use fuse::{best_fused_bipartition, fusion_search_space, FusedJob};
pub use group::{pair_efficiency, GroupMember, InterleaveGroup};
pub use model_parallel::{mp_pair_efficiency, ModelParallelJob};
pub use ordering::{
    choose_ordering, enumerate_assignments, policy_efficiency, ChosenOrdering, OrderingPolicy,
};
pub use pipeline::{interleaving_gain_over_pipelining, PipelineModel};
pub use timeline::{run_timeline, stagger_delays, TimelineJob, TimelineReport};
pub use viz::render_schedule;
