//! Intra-job multi-resource pipelining (Fig. 2, §2.2).
//!
//! Before Muri, systems like BytePS and ByteScheduler overlapped the
//! resource usage of different stages *within one job*: prefetch the next
//! batch while computing the current one, synchronize gradients during
//! backpropagation. The paper's point (Fig. 2) is that pipelining is
//! orthogonal to interleaving: even a perfectly pipelined job runs at the
//! speed of its bottleneck stage and leaves every *other* resource idle —
//! idle time only another job can use.
//!
//! This module models pipelining parametrically: with overlap factor
//! `ω ∈ [0, 1]`, the steady-state iteration time shrinks from the serial
//! stage sum (`ω = 0`) toward the bottleneck stage duration (`ω = 1`,
//! perfect overlap; data dependencies keep real jobs below 1).

use muri_workload::{ResourceKind, SimDuration, StageProfile};
use serde::{Deserialize, Serialize};

/// Intra-job pipelining model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineModel {
    /// Overlap factor `ω ∈ [0, 1]`: 0 = fully serial stages, 1 = perfect
    /// pipelining (iteration time = bottleneck stage).
    pub overlap: f64,
}

impl Default for PipelineModel {
    fn default() -> Self {
        // Common prefetch + gradient-overlap implementations hide roughly
        // half of the non-bottleneck work (calibrated to keep Fig. 2's
        // ~1.7x interleaving-over-pipelining gain reproducible).
        PipelineModel { overlap: 0.5 }
    }
}

impl PipelineModel {
    /// No pipelining: iteration time is the serial sum of stages.
    pub fn none() -> Self {
        PipelineModel { overlap: 0.0 }
    }

    /// Perfect pipelining: iteration time is the bottleneck stage.
    pub fn perfect() -> Self {
        PipelineModel { overlap: 1.0 }
    }

    /// Steady-state per-iteration time of a pipelined job.
    pub fn iteration_time(&self, profile: &StageProfile) -> SimDuration {
        debug_assert!((0.0..=1.0).contains(&self.overlap));
        let serial = profile.iteration_time();
        let bottleneck = profile.duration(profile.bottleneck());
        let hidden = serial.saturating_sub(bottleneck).scale(self.overlap);
        serial.saturating_sub(hidden)
    }

    /// Throughput gain of pipelining over serial execution (≥ 1).
    pub fn speedup(&self, profile: &StageProfile) -> f64 {
        let serial = profile.iteration_time().as_secs_f64();
        let pipelined = self.iteration_time(profile).as_secs_f64();
        if pipelined == 0.0 {
            1.0
        } else {
            serial / pipelined
        }
    }

    /// Fraction of time resource `r` is busy in the pipelined steady
    /// state — the idle capacity interleaving can harvest (Fig. 2's gray
    /// areas).
    pub fn busy_fraction(&self, profile: &StageProfile, r: ResourceKind) -> f64 {
        let t = self.iteration_time(profile).as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        (profile.duration(r).as_secs_f64() / t).min(1.0)
    }
}

/// Fig. 2's comparison: throughput of interleaving two pipelined jobs on
/// one resource set, relative to running them back to back (each
/// pipelined). Interleaving wins when the jobs' bottlenecks differ —
/// each job's idle resources absorb the other's bottleneck stage.
pub fn interleaving_gain_over_pipelining(
    a: &StageProfile,
    b: &StageProfile,
    pipeline: PipelineModel,
) -> f64 {
    // Interleaved: both jobs run concurrently; each resource must serve
    // both jobs' demand per iteration pair, and per-job dependencies keep
    // the pair period at least either job's pipelined iteration.
    let mut period: f64 = 0.0;
    for r in ResourceKind::ALL {
        period = period.max((a.duration(r) + b.duration(r)).as_secs_f64());
    }
    let period = period
        .max(pipeline.iteration_time(a).as_secs_f64())
        .max(pipeline.iteration_time(b).as_secs_f64());
    if period == 0.0 {
        return 1.0;
    }
    // Back to back: one iteration of each costs the sum of their
    // pipelined iteration times.
    let serial =
        pipeline.iteration_time(a).as_secs_f64() + pipeline.iteration_time(b).as_secs_f64();
    serial / period
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn overlap_interpolates_serial_to_bottleneck() {
        let p = StageProfile::new(secs(1), secs(2), secs(6), secs(3));
        assert_eq!(PipelineModel::none().iteration_time(&p), secs(12));
        assert_eq!(PipelineModel::perfect().iteration_time(&p), secs(6));
        let half = PipelineModel { overlap: 0.5 };
        assert_eq!(half.iteration_time(&p), secs(9));
        assert!(half.speedup(&p) > 1.3);
    }

    #[test]
    fn pipelined_job_still_leaves_resources_idle() {
        // Even perfectly pipelined, a GPU-bound job leaves storage, CPU,
        // and network mostly idle — the opportunity Muri exploits.
        let p = StageProfile::new(secs(1), secs(1), secs(8), secs(2));
        let perfect = PipelineModel::perfect();
        assert!((perfect.busy_fraction(&p, ResourceKind::Gpu) - 1.0).abs() < 1e-12);
        assert!(perfect.busy_fraction(&p, ResourceKind::Storage) < 0.2);
        assert!(perfect.busy_fraction(&p, ResourceKind::Network) < 0.3);
    }

    #[test]
    fn figure2_interleaving_beats_pipelining_alone() {
        // Two pipelined jobs with complementary bottlenecks (GPU-bound A,
        // network-bound B): interleaving them on one resource set beats
        // running them back to back by well over 1.5x (the paper
        // illustrates 11/6.5 ≈ 1.7x).
        let a = StageProfile::new(secs(1), secs(1), secs(6), secs(2));
        let b = StageProfile::new(secs(1), secs(1), secs(2), secs(6));
        let gain = interleaving_gain_over_pipelining(&a, &b, PipelineModel::default());
        assert!(gain > 1.5, "gain {gain}");
        assert!(gain <= 2.0 + 1e-12);
    }

    #[test]
    fn identical_bottlenecks_gain_little() {
        let a = StageProfile::new(secs(1), secs(1), secs(8), secs(1));
        let gain = interleaving_gain_over_pipelining(&a, &a, PipelineModel::perfect());
        // Two GPU-bound jobs just serialize on the GPU.
        assert!(gain <= 1.05, "gain {gain}");
    }

    #[test]
    fn degenerate_profiles_are_safe() {
        let empty = StageProfile::default();
        assert_eq!(
            PipelineModel::default().iteration_time(&empty),
            SimDuration::ZERO
        );
        assert_eq!(PipelineModel::default().speedup(&empty), 1.0);
        assert_eq!(
            interleaving_gain_over_pipelining(&empty, &empty, PipelineModel::default()),
            1.0
        );
    }
}
