//! Resource-contention (interference) model.
//!
//! Muri inserts barriers so grouped jobs never use one resource
//! simultaneously, "because the processing speed may be significantly
//! affected due to interference" (§4.1, citing Bao et al.). Baselines that
//! *do* co-locate jobs on a resource — GPU-sharing schedulers like AntMan,
//! or the §2.1 motivating example where two shared jobs run at half
//! speed — need a model for that interference. This module provides it.

use serde::{Deserialize, Serialize};

/// Interference when `m` jobs use one resource concurrently: each runs at
/// `m^(−α)` of its solo speed.
///
/// * `α = 1` is fair time-slicing with no overhead (the §2.1 example:
///   two jobs → half speed each).
/// * `α > 1` models super-linear interference (cache thrash, PCIe
///   contention).
/// * `α = 0` is magical perfect sharing (useful as an upper bound in
///   ablations).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Interference exponent α ≥ 0.
    pub alpha: f64,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        InterferenceModel { alpha: 1.0 }
    }
}

impl InterferenceModel {
    /// Fair time-slicing (`α = 1`).
    pub fn fair() -> Self {
        InterferenceModel { alpha: 1.0 }
    }

    /// Perfect sharing (`α = 0`) — no slowdown however many jobs share.
    pub fn perfect() -> Self {
        InterferenceModel { alpha: 0.0 }
    }

    /// Per-job speed fraction when `m` jobs share a resource.
    pub fn shared_speed(&self, m: usize) -> f64 {
        debug_assert!(self.alpha >= 0.0);
        if m <= 1 {
            1.0
        } else {
            (m as f64).powf(-self.alpha)
        }
    }

    /// Per-job slowdown factor (≥ 1) when `m` jobs share a resource.
    pub fn slowdown(&self, m: usize) -> f64 {
        1.0 / self.shared_speed(m)
    }

    /// Aggregate throughput of `m` jobs sharing, normalized to one solo
    /// job: `m × shared_speed(m)`. For `α > 1` sharing destroys
    /// throughput; for `α = 1` it is neutral; for `α < 1` it gains.
    pub fn aggregate_throughput(&self, m: usize) -> f64 {
        m as f64 * self.shared_speed(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_sharing_halves_two_jobs() {
        let m = InterferenceModel::fair();
        assert_eq!(m.shared_speed(1), 1.0);
        assert_eq!(m.shared_speed(2), 0.5);
        assert_eq!(m.slowdown(2), 2.0);
        assert!((m.aggregate_throughput(4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_sharing_never_slows() {
        let m = InterferenceModel::perfect();
        for k in 1..=8 {
            assert_eq!(m.shared_speed(k), 1.0);
        }
        assert_eq!(m.aggregate_throughput(8), 8.0);
    }

    #[test]
    fn superlinear_interference_destroys_throughput() {
        let m = InterferenceModel { alpha: 1.5 };
        assert!(m.aggregate_throughput(2) < 1.0);
        assert!(m.shared_speed(2) < 0.5);
    }

    #[test]
    fn motivating_example_gpu_sharing_hurts_jct() {
        // §2.1: two 1-time-unit jobs. FIFO: JCTs are 1 and 2, average 1.5.
        // GPU sharing with fair contention: both run at half speed, both
        // finish at 2, average JCT 2 — worse.
        let m = InterferenceModel::fair();
        let fifo_avg = (1.0 + 2.0) / 2.0;
        let shared_jct = 1.0 / m.shared_speed(2);
        let shared_avg = (shared_jct + shared_jct) / 2.0;
        assert!(shared_avg > fifo_avg);
    }
}
