//! Fine-grained per-GPU stage-timeline executor.
//!
//! This is the reproduction's stand-in for the paper's PyTorch/Horovod
//! executor: it executes grouped jobs stage by stage on a set of GPU
//! slots, with the two kinds of dependencies §4.2 analyzes:
//!
//! * **inter-job interleaving** — on each slot, each resource serves one
//!   worker at a time (FIFO), exactly the "synchronization barrier after
//!   the overlapped stages" discipline of §4.1 that avoids interference;
//! * **intra-job synchronization** — a distributed job's workers barrier
//!   before gradient synchronization, and an iteration completes only
//!   when every worker finished its network stage.
//!
//! Because both dependency kinds are modeled, the executor reproduces the
//! paper's Fig. 7 cascade (a multi-GPU job grouped with different partners
//! on different GPUs stalls itself *and* its partners), and its measured
//! group iteration times validate the closed-form Eq. 3 used by the
//! scheduler (see the integration tests).

use muri_workload::{
    JobId, ResourceKind, ResourceVec, SimDuration, SimTime, StageProfile, NUM_RESOURCES,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// A job to execute on the timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimelineJob {
    /// Job id (for reporting).
    pub id: JobId,
    /// Per-iteration stage profile (every worker runs this).
    pub profile: StageProfile,
    /// GPU slots hosting this job's workers — one worker per slot.
    pub slots: Vec<usize>,
    /// Delay before the first stage starts (used to phase-shift group
    /// members; see [`stagger_delays`]).
    pub initial_delay: SimDuration,
    /// Iterations to run.
    pub iterations: u64,
}

/// Result of a timeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineReport {
    /// Finish time per job (`None` if the horizon cut it off).
    pub finish_time: Vec<Option<SimTime>>,
    /// Completed iterations per job.
    pub completed_iterations: Vec<u64>,
    /// Busy time per slot per resource.
    pub busy: Vec<ResourceVec<SimDuration>>,
    /// Time the last event was processed.
    pub end_time: SimTime,
    /// True if the horizon stopped the run before all jobs finished.
    pub horizon_reached: bool,
}

impl TimelineReport {
    /// Average per-iteration time of job `j` measured from its first
    /// possible start (after its initial delay) to its finish. `None` if
    /// the job did not finish or ran zero iterations.
    pub fn avg_iteration_time(&self, jobs: &[TimelineJob], j: usize) -> Option<SimDuration> {
        let finish = self.finish_time[j]?;
        let iters = self.completed_iterations[j];
        if iters == 0 {
            return None;
        }
        Some(finish.since(SimTime::ZERO + jobs[j].initial_delay) / iters)
    }

    /// Throughput of job `j` in samples/second given a per-worker batch
    /// size (counts only completed iterations over the active span).
    pub fn throughput(&self, jobs: &[TimelineJob], j: usize, batch_per_worker: u64) -> f64 {
        let iters = self.completed_iterations[j];
        if iters == 0 {
            return 0.0;
        }
        let end = self.finish_time[j].unwrap_or(self.end_time);
        let span = end
            .since(SimTime::ZERO + jobs[j].initial_delay)
            .as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        (iters * batch_per_worker * jobs[j].slots.len() as u64) as f64 / span
    }

    /// Overall busy fraction of resource `r` across all slots, over the
    /// whole run.
    pub fn utilization(&self, r: ResourceKind) -> f64 {
        let span = self.end_time.as_secs_f64();
        if span == 0.0 || self.busy.is_empty() {
            return 0.0;
        }
        let busy: f64 = self.busy.iter().map(|b| b[r].as_secs_f64()).sum();
        busy / (span * self.busy.len() as f64)
    }
}

/// Compute initial delays realizing a phase-offset assignment over the
/// group's effective cycle: job `i` with offset `o_i` starts its first
/// cycle stage at the beginning of lockstep phase `(k − o_i) mod k`, so
/// its delay is the total length of the phases before that.
pub fn stagger_delays(profiles: &[StageProfile], offsets: &[usize]) -> Vec<SimDuration> {
    let cycle = crate::efficiency::effective_cycle(profiles);
    let k = cycle.len();
    let phase_len: Vec<SimDuration> = (0..k)
        .map(|phase| {
            profiles
                .iter()
                .zip(offsets)
                .map(|(p, &o)| p.duration(cycle[(o + phase) % k]))
                .max()
                .unwrap_or(SimDuration::ZERO)
        })
        .collect();
    offsets
        .iter()
        .map(|&o| {
            let start_phase = (k - o % k) % k;
            phase_len[..start_phase].iter().copied().sum()
        })
        .collect()
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerState {
    /// Waiting for its initial delay or queued for a resource.
    Idle,
    /// Running a stage (release scheduled).
    Running,
    /// Waiting at the pre-sync or end-of-iteration barrier.
    Blocked,
    /// All iterations complete.
    Done,
}

#[derive(Debug)]
struct Worker {
    job: usize,
    slot: usize,
    stage: usize,
    state: WorkerState,
}

#[derive(Debug, Default)]
struct ResourceState {
    occupied_by: Option<usize>,
    queue: VecDeque<usize>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    StageDone { worker: usize },
    WorkerStart { worker: usize },
}

/// Run the timeline until all jobs finish or `horizon` elapses.
///
/// `num_slots` must cover every slot index referenced by the jobs.
pub fn run_timeline(
    jobs: &[TimelineJob],
    num_slots: usize,
    horizon: SimDuration,
) -> TimelineReport {
    for job in jobs {
        assert!(
            !job.slots.is_empty(),
            "{}: job needs at least one worker",
            job.id
        );
        for &s in &job.slots {
            assert!(
                s < num_slots,
                "{}: slot {s} out of range {num_slots}",
                job.id
            );
        }
    }
    let mut engine = Engine::new(jobs, num_slots);
    engine.run(horizon);
    engine.into_report(jobs)
}

struct Engine<'a> {
    jobs: &'a [TimelineJob],
    workers: Vec<Worker>,
    job_workers: Vec<Vec<usize>>,
    resources: Vec<ResourceState>,
    busy: Vec<ResourceVec<SimDuration>>,
    // Per-job barrier arrival counts.
    sync_arrived: Vec<usize>,
    end_arrived: Vec<usize>,
    completed_iters: Vec<u64>,
    finish_time: Vec<Option<SimTime>>,
    events: BinaryHeap<Reverse<(SimTime, u64, Event)>>,
    seq: u64,
    now: SimTime,
    horizon_reached: bool,
}

impl<'a> Engine<'a> {
    fn new(jobs: &'a [TimelineJob], num_slots: usize) -> Self {
        let mut workers = Vec::new();
        let mut job_workers = vec![Vec::new(); jobs.len()];
        for (j, job) in jobs.iter().enumerate() {
            for &slot in &job.slots {
                job_workers[j].push(workers.len());
                workers.push(Worker {
                    job: j,
                    slot,
                    stage: 0,
                    state: WorkerState::Idle,
                });
            }
        }
        let mut engine = Engine {
            jobs,
            workers,
            job_workers,
            resources: (0..num_slots * NUM_RESOURCES)
                .map(|_| ResourceState::default())
                .collect(),
            busy: vec![ResourceVec::splat(SimDuration::ZERO); num_slots],
            sync_arrived: vec![0; jobs.len()],
            end_arrived: vec![0; jobs.len()],
            completed_iters: vec![0; jobs.len()],
            finish_time: vec![None; jobs.len()],
            events: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            horizon_reached: false,
        };
        for (j, job) in jobs.iter().enumerate() {
            if job.profile.is_empty() {
                // A job with no work completes instantly; handling it here
                // keeps the barrier logic free of zero-length livelocks.
                engine.completed_iters[j] = job.iterations;
                engine.finish_time[j] = Some(SimTime::ZERO + job.initial_delay);
                for &w in &engine.job_workers[j] {
                    engine.workers[w].state = WorkerState::Done;
                }
                continue;
            }
            for &w in &engine.job_workers[j].clone() {
                engine.schedule(
                    SimTime::ZERO + job.initial_delay,
                    Event::WorkerStart { worker: w },
                );
            }
        }
        engine
    }

    fn schedule(&mut self, at: SimTime, event: Event) {
        self.seq += 1;
        self.events.push(Reverse((at, self.seq, event)));
    }

    fn resource_index(slot: usize, r: ResourceKind) -> usize {
        slot * NUM_RESOURCES + r.index()
    }

    fn run(&mut self, horizon: SimDuration) {
        let deadline = SimTime::ZERO + horizon;
        while let Some(Reverse((at, _, event))) = self.events.pop() {
            if at > deadline {
                self.horizon_reached = true;
                self.now = deadline;
                break;
            }
            self.now = at;
            match event {
                Event::WorkerStart { worker } => self.advance(worker),
                Event::StageDone { worker } => self.stage_done(worker),
            }
        }
        if self.finish_time.iter().any(Option::is_none) && !self.events.is_empty() {
            self.horizon_reached = true;
        }
    }

    /// Move `worker` forward from its current stage: skip empty stages,
    /// handle barriers, and enqueue for the next real resource.
    fn advance(&mut self, worker: usize) {
        loop {
            let w = &self.workers[worker];
            let job_idx = w.job;
            let job = &self.jobs[job_idx];
            if self.completed_iters[job_idx] >= job.iterations {
                self.workers[worker].state = WorkerState::Done;
                return;
            }
            let stage = self.workers[worker].stage;
            let r = ResourceKind::from_index(stage);
            let dur = job.profile.duration(r);
            let distributed = job.slots.len() > 1;
            if r == ResourceKind::Network && distributed {
                // Barrier: wait until every worker of the job arrives.
                self.workers[worker].state = WorkerState::Blocked;
                self.sync_arrived[job_idx] += 1;
                if self.sync_arrived[job_idx] == job.slots.len() {
                    self.sync_arrived[job_idx] = 0;
                    if dur.is_zero() {
                        // Pure barrier: everyone proceeds past the stage.
                        for &peer in &self.job_workers[job_idx].clone() {
                            self.finish_stage(peer);
                        }
                    } else {
                        for &peer in &self.job_workers[job_idx].clone() {
                            let slot = self.workers[peer].slot;
                            let res = Self::resource_index(slot, r);
                            self.request(peer, res, dur);
                        }
                    }
                }
                return;
            }
            if dur.is_zero() {
                if !self.step_stage(worker) {
                    return; // iteration ended; continuation handled there
                }
                continue;
            }
            let slot = self.workers[worker].slot;
            let res = Self::resource_index(slot, r);
            self.request(worker, res, dur);
            return;
        }
    }

    /// Enqueue `worker` for resource `res`; start immediately if free.
    fn request(&mut self, worker: usize, res: usize, dur: SimDuration) {
        if self.resources[res].occupied_by.is_none() {
            self.start_stage(worker, res, dur);
        } else {
            self.workers[worker].state = WorkerState::Idle;
            self.resources[res].queue.push_back(worker);
        }
    }

    fn start_stage(&mut self, worker: usize, res: usize, dur: SimDuration) {
        self.resources[res].occupied_by = Some(worker);
        self.workers[worker].state = WorkerState::Running;
        let slot = res / NUM_RESOURCES;
        let r = ResourceKind::from_index(res % NUM_RESOURCES);
        self.busy[slot][r] += dur;
        let at = self.now + dur;
        self.schedule(at, Event::StageDone { worker });
    }

    fn stage_done(&mut self, worker: usize) {
        // Release the resource and grant the next queued worker.
        let w = &self.workers[worker];
        let stage_r = ResourceKind::from_index(w.stage);
        let res = Self::resource_index(w.slot, stage_r);
        debug_assert_eq!(self.resources[res].occupied_by, Some(worker));
        self.resources[res].occupied_by = None;
        if let Some(next) = self.resources[res].queue.pop_front() {
            let next_job = &self.jobs[self.workers[next].job];
            let next_r = ResourceKind::from_index(self.workers[next].stage);
            let dur = next_job.profile.duration(next_r);
            self.start_stage(next, res, dur);
        }
        if self.finish_stage(worker) {
            self.advance(worker);
        }
    }

    /// Complete `worker`'s current stage and move to the next. Returns
    /// true if the worker should immediately try to advance (i.e. it did
    /// not just park at an end-of-iteration barrier or finish the job).
    fn finish_stage(&mut self, worker: usize) -> bool {
        self.step_stage(worker)
    }

    /// Advance the stage pointer; on wrapping past the last stage, handle
    /// the end-of-iteration barrier and iteration accounting. Returns true
    /// if the worker may continue immediately.
    fn step_stage(&mut self, worker: usize) -> bool {
        let job_idx = self.workers[worker].job;
        let job = &self.jobs[job_idx];
        let next = self.workers[worker].stage + 1;
        if next < NUM_RESOURCES {
            self.workers[worker].stage = next;
            return true;
        }
        // Iteration boundary.
        self.workers[worker].stage = 0;
        if job.slots.len() > 1 {
            self.workers[worker].state = WorkerState::Blocked;
            self.end_arrived[job_idx] += 1;
            if self.end_arrived[job_idx] == job.slots.len() {
                self.end_arrived[job_idx] = 0;
                self.complete_iteration(job_idx);
                if self.completed_iters[job_idx] >= job.iterations {
                    self.finish_job(job_idx);
                } else {
                    for &peer in &self.job_workers[job_idx].clone() {
                        self.advance(peer);
                    }
                }
            }
            false
        } else {
            self.complete_iteration(job_idx);
            if self.completed_iters[job_idx] >= job.iterations {
                self.finish_job(job_idx);
                false
            } else {
                true
            }
        }
    }

    fn complete_iteration(&mut self, job_idx: usize) {
        self.completed_iters[job_idx] += 1;
    }

    fn finish_job(&mut self, job_idx: usize) {
        self.finish_time[job_idx] = Some(self.now);
        for &w in &self.job_workers[job_idx] {
            self.workers[w].state = WorkerState::Done;
        }
    }

    fn into_report(self, jobs: &[TimelineJob]) -> TimelineReport {
        let _ = jobs;
        TimelineReport {
            finish_time: self.finish_time,
            completed_iterations: self.completed_iters,
            busy: self.busy,
            end_time: self.now,
            horizon_reached: self.horizon_reached,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn job(id: u32, profile: StageProfile, slots: Vec<usize>, iters: u64) -> TimelineJob {
        TimelineJob {
            id: JobId(id),
            profile,
            slots,
            initial_delay: SimDuration::ZERO,
            iterations: iters,
        }
    }

    const HORIZON: SimDuration = SimDuration::from_hours(10);

    #[test]
    fn solo_job_runs_serial_iterations() {
        let p = StageProfile::new(secs(1), secs(2), secs(3), SimDuration::ZERO);
        let jobs = vec![job(1, p, vec![0], 5)];
        let r = run_timeline(&jobs, 1, HORIZON);
        assert_eq!(r.completed_iterations[0], 5);
        assert_eq!(r.finish_time[0], Some(SimTime::from_secs(30)));
        assert_eq!(r.avg_iteration_time(&jobs, 0), Some(secs(6)));
        assert!(!r.horizon_reached);
        // Busy accounting: 5×1 storage, 5×2 cpu, 5×3 gpu.
        assert_eq!(r.busy[0][ResourceKind::Storage], secs(5));
        assert_eq!(r.busy[0][ResourceKind::Cpu], secs(10));
        assert_eq!(r.busy[0][ResourceKind::Gpu], secs(15));
    }

    #[test]
    fn two_complementary_jobs_share_one_slot_perfectly() {
        // Fig. 4's A (2 CPU, 1 GPU) and B (1 CPU, 2 GPU) staggered: after a
        // transient, each iteration of the pair takes 3 s — matching Eq. 3.
        let a = StageProfile::new(SimDuration::ZERO, secs(2), secs(1), SimDuration::ZERO);
        let b = StageProfile::new(SimDuration::ZERO, secs(1), secs(2), SimDuration::ZERO);
        let iters = 50;
        let delays = stagger_delays(&[a, b], &[1, 2]);
        let jobs = vec![
            TimelineJob {
                id: JobId(1),
                profile: a,
                slots: vec![0],
                initial_delay: delays[0],
                iterations: iters,
            },
            TimelineJob {
                id: JobId(2),
                profile: b,
                slots: vec![0],
                initial_delay: delays[1],
                iterations: iters,
            },
        ];
        let r = run_timeline(&jobs, 1, HORIZON);
        assert!(!r.horizon_reached);
        // Each job alone needs 3 s/iter; interleaved they both sustain
        // ~3 s/iter (allow a small transient).
        for j in 0..2 {
            let avg = r.avg_iteration_time(&jobs, j).unwrap().as_secs_f64();
            assert!(avg <= 3.2, "job {j}: avg iteration {avg}");
        }
        // CPU and GPU on the slot are both busy ~100% of the makespan.
        let span = r.end_time.as_secs_f64();
        assert!(r.busy[0][ResourceKind::Cpu].as_secs_f64() / span > 0.9);
        assert!(r.busy[0][ResourceKind::Gpu].as_secs_f64() / span > 0.9);
    }

    #[test]
    fn conflicting_jobs_queue_on_the_same_resource() {
        // Two clones of A (2 CPU, 1 GPU) on one slot: CPU is the contended
        // resource; Eq. 3 says 4 s per pair-iteration.
        let a = StageProfile::new(SimDuration::ZERO, secs(2), secs(1), SimDuration::ZERO);
        let iters = 40;
        let jobs = vec![job(1, a, vec![0], iters), job(2, a, vec![0], iters)];
        let r = run_timeline(&jobs, 1, HORIZON);
        for j in 0..2 {
            let avg = r.avg_iteration_time(&jobs, j).unwrap().as_secs_f64();
            assert!(
                (3.8..=4.3).contains(&avg),
                "job {j}: avg {avg} (Eq. 3 predicts 4)"
            );
        }
    }

    #[test]
    fn distributed_job_synchronizes_workers() {
        // 2-worker job: each iteration is gpu 2s then net 1s with a
        // barrier. Workers stay in lockstep; 10 iterations take 30s.
        let p = StageProfile::new(SimDuration::ZERO, SimDuration::ZERO, secs(2), secs(1));
        let jobs = vec![job(1, p, vec![0, 1], 10)];
        let r = run_timeline(&jobs, 2, HORIZON);
        assert_eq!(r.completed_iterations[0], 10);
        assert_eq!(r.finish_time[0], Some(SimTime::from_secs(30)));
    }

    #[test]
    fn figure7_cascade_intra_job_sync_propagates_interference() {
        // The Fig. 7 mechanism: "the speed of a job is decided by the
        // slowest worker". Job A spans slots 0 and 1 (gpu 2s + sync 1s).
        // Job B interleaves with A's worker on slot 0 only and hogs that
        // GPU for 4s per iteration. A's slot-0 worker slows down, the
        // synchronization barrier drags A's slot-1 worker with it, and
        // slot 1's GPU sits idle — interference on one GPU cascades into
        // wasted capacity on another.
        let a = StageProfile::new(SimDuration::ZERO, SimDuration::ZERO, secs(2), secs(1));
        let b = StageProfile::new(
            SimDuration::ZERO,
            SimDuration::ZERO,
            secs(4),
            SimDuration::ZERO,
        );
        let iters = 30;
        // Baseline: A alone on two slots — period 3s/iteration.
        let solo_jobs = vec![job(1, a, vec![0, 1], iters)];
        let solo = run_timeline(&solo_jobs, 2, HORIZON);
        let solo_avg = solo.avg_iteration_time(&solo_jobs, 0).unwrap();
        assert_eq!(solo_avg, secs(3));
        // Cross-grouped: B contends on slot 0 only.
        let jobs = vec![job(1, a, vec![0, 1], iters), job(2, b, vec![0], iters)];
        let r = run_timeline(&jobs, 2, HORIZON);
        let a_avg = r.avg_iteration_time(&jobs, 0).unwrap();
        assert!(
            a_avg.as_secs_f64() >= 5.0,
            "A's slowest-worker period should near 6s (2+4 on slot 0), got {a_avg}"
        );
        // The cascade wastes slot 1: its GPU is busy only ~2s per ~6s
        // round even though A "occupies" it the whole time.
        let span = r.end_time.as_secs_f64();
        let slot1_gpu = r.busy[1][ResourceKind::Gpu].as_secs_f64() / span;
        assert!(
            slot1_gpu < 0.5,
            "slot 1 GPU should be mostly idle under the cascade, got {slot1_gpu:.2}"
        );
    }

    #[test]
    fn horizon_stops_runaway_jobs() {
        let p = StageProfile::new(
            secs(10),
            SimDuration::ZERO,
            SimDuration::ZERO,
            SimDuration::ZERO,
        );
        let jobs = vec![job(1, p, vec![0], 1_000_000)];
        let r = run_timeline(&jobs, 1, SimDuration::from_secs(95));
        assert!(r.horizon_reached);
        assert!(r.finish_time[0].is_none());
        assert!(r.completed_iterations[0] >= 8);
    }

    #[test]
    fn empty_profile_job_finishes_immediately() {
        let jobs = vec![job(1, StageProfile::default(), vec![0], 100)];
        let r = run_timeline(&jobs, 1, HORIZON);
        assert_eq!(r.completed_iterations[0], 100);
        assert_eq!(r.finish_time[0], Some(SimTime::ZERO));
    }

    #[test]
    fn stagger_delays_match_phase_prefix_sums() {
        let a = StageProfile::new(secs(1), secs(2), secs(1), secs(1));
        let b = StageProfile::new(secs(1), secs(1), secs(2), secs(1));
        // offsets [1, 2]: phase lengths are [2,1,1,1] (see efficiency
        // tests). Job 0 (offset 1) starts at phase 3 → delay 2+1+1 = 4;
        // job 1 (offset 2) starts at phase 2 → delay 2+1 = 3.
        let d = stagger_delays(&[a, b], &[1, 2]);
        assert_eq!(d, vec![secs(4), secs(3)]);
        // Offset 0 starts immediately.
        let d0 = stagger_delays(&[a], &[0]);
        assert_eq!(d0, vec![SimDuration::ZERO]);
    }

    #[test]
    fn utilization_is_bounded() {
        let p = StageProfile::new(secs(1), secs(1), secs(1), SimDuration::ZERO);
        let jobs = vec![job(1, p, vec![0], 10), job(2, p, vec![0], 10)];
        let r = run_timeline(&jobs, 1, HORIZON);
        for res in ResourceKind::ALL {
            let u = r.utilization(res);
            assert!((0.0..=1.0).contains(&u), "{res}: {u}");
        }
    }
}
