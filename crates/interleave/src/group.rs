//! Interleave groups: a set of jobs sharing one set of resources in time.

use crate::efficiency::group_efficiency;
use crate::ordering::{choose_ordering, ChosenOrdering, OrderingPolicy};
use muri_workload::{JobId, ResourceKind, SimDuration, StageProfile};
use serde::{Deserialize, Serialize};

/// One job inside a group: its id and the stage profile the scheduler
/// measured for it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupMember {
    /// Job id.
    pub job: JobId,
    /// Measured per-iteration stage profile.
    pub profile: StageProfile,
}

/// A formed interleave group: members, the chosen stage ordering, and the
/// derived group iteration time and efficiency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterleaveGroup {
    /// Group members in offset order.
    pub members: Vec<GroupMember>,
    /// The chosen phase-offset assignment and group iteration time.
    pub ordering: ChosenOrdering,
    /// Interleaving efficiency γ (Eq. 4) under the chosen ordering.
    pub efficiency: f64,
}

impl InterleaveGroup {
    /// Form a group from members under an ordering policy. Panics if the
    /// group exceeds `k` members.
    ///
    /// ```
    /// use muri_interleave::{GroupMember, InterleaveGroup, OrderingPolicy};
    /// use muri_workload::{JobId, StageProfile};
    ///
    /// // Fig. 4's complementary pair: CPU-heavy A with GPU-heavy B.
    /// let a = StageProfile::from_secs_f64(0.0, 2.0, 1.0, 0.0);
    /// let b = StageProfile::from_secs_f64(0.0, 1.0, 2.0, 0.0);
    /// let group = InterleaveGroup::form(
    ///     vec![
    ///         GroupMember { job: JobId(0), profile: a },
    ///         GroupMember { job: JobId(1), profile: b },
    ///     ],
    ///     OrderingPolicy::Best,
    /// );
    /// // Perfect overlap: γ = 1, both jobs keep their solo speed.
    /// assert!((group.efficiency - 1.0).abs() < 1e-9);
    /// assert!((group.total_normalized_throughput() - 2.0).abs() < 1e-9);
    /// ```
    pub fn form(members: Vec<GroupMember>, policy: OrderingPolicy) -> Self {
        let profiles: Vec<StageProfile> = members.iter().map(|m| m.profile).collect();
        let ordering = choose_ordering(&profiles, policy);
        let efficiency = group_efficiency(&profiles, &ordering.offsets);
        InterleaveGroup {
            members,
            ordering,
            efficiency,
        }
    }

    /// A group holding a single job (no interleaving).
    pub fn solo(member: GroupMember) -> Self {
        InterleaveGroup::form(vec![member], OrderingPolicy::Best)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Group per-iteration time `T` (Eq. 3).
    pub fn iteration_time(&self) -> SimDuration {
        self.ordering.iteration_time
    }

    /// Slowdown of member `idx` relative to running alone:
    /// `T / (member's solo iteration time)` (≥ 1).
    pub fn slowdown(&self, idx: usize) -> f64 {
        let solo = self.members[idx].profile.iteration_time().as_secs_f64();
        if solo == 0.0 {
            return 1.0;
        }
        self.iteration_time().as_secs_f64() / solo
    }

    /// Normalized throughput of member `idx` (Table 2's "Norm. Tput"):
    /// throughput in the group ÷ throughput alone = solo iteration time
    /// ÷ group iteration time.
    pub fn normalized_throughput(&self, idx: usize) -> f64 {
        let s = self.slowdown(idx);
        if s == 0.0 {
            0.0
        } else {
            1.0 / s
        }
    }

    /// Sum of normalized throughputs — the aggregate speedup of packing
    /// the group onto one set of resources (Table 2's bottom row; > 1
    /// means interleaving beats running the members back to back).
    pub fn total_normalized_throughput(&self) -> f64 {
        (0..self.len()).map(|i| self.normalized_throughput(i)).sum()
    }

    /// Busy fraction of resource `r` while the group runs:
    /// `Σ_i t_i^r / T`. Feeds the utilization time series (Fig. 8).
    pub fn busy_fraction(&self, r: ResourceKind) -> f64 {
        let t = self.iteration_time().as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .members
            .iter()
            .map(|m| m.profile.duration(r).as_secs_f64())
            .sum();
        (busy / t).min(1.0)
    }

    /// Remove a member (e.g. it finished) and re-form the ordering for the
    /// remaining members under `policy`. No-op if the job is not a member.
    pub fn remove_member(&mut self, job: JobId, policy: OrderingPolicy) {
        let before = self.members.len();
        self.members.retain(|m| m.job != job);
        if self.members.len() != before {
            *self = InterleaveGroup::form(std::mem::take(&mut self.members), policy);
        }
    }

    /// Member ids.
    pub fn job_ids(&self) -> Vec<JobId> {
        self.members.iter().map(|m| m.job).collect()
    }
}

/// Pairwise interleaving efficiency — the edge weight of the grouping
/// graph (§4.1: "assign γ(u,v) as the weight of edge (u,v)").
pub fn pair_efficiency(a: &StageProfile, b: &StageProfile, policy: OrderingPolicy) -> f64 {
    let ordering = choose_ordering(&[*a, *b], policy);
    group_efficiency(&[*a, *b], &ordering.offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn member(id: u32, profile: StageProfile) -> GroupMember {
        GroupMember {
            job: JobId(id),
            profile,
        }
    }

    fn cpu_gpu(cpu: u64, gpu: u64) -> StageProfile {
        StageProfile::new(SimDuration::ZERO, secs(cpu), secs(gpu), SimDuration::ZERO)
    }

    #[test]
    fn complementary_pair_runs_at_full_speed() {
        // Fig. 4's A+B: both keep their solo iteration time of 3s, so each
        // has normalized throughput 1 and the group total is 2.
        let g = InterleaveGroup::form(
            vec![member(1, cpu_gpu(2, 1)), member(2, cpu_gpu(1, 2))],
            OrderingPolicy::Best,
        );
        assert_eq!(g.iteration_time(), secs(3));
        assert!((g.slowdown(0) - 1.0).abs() < 1e-12);
        assert!((g.total_normalized_throughput() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn conflicting_pair_slows_down() {
        // Fig. 4's A+C: T = 4 vs solo 3 each → slowdown 4/3, total 1.5.
        let g = InterleaveGroup::form(
            vec![member(1, cpu_gpu(2, 1)), member(2, cpu_gpu(2, 1))],
            OrderingPolicy::Best,
        );
        assert_eq!(g.iteration_time(), secs(4));
        assert!((g.slowdown(0) - 4.0 / 3.0).abs() < 1e-12);
        assert!((g.total_normalized_throughput() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn busy_fraction_matches_hand_computation() {
        let g = InterleaveGroup::form(
            vec![member(1, cpu_gpu(2, 1)), member(2, cpu_gpu(2, 1))],
            OrderingPolicy::Best,
        );
        // T = 4; CPU busy 4/4 = 1, GPU busy 2/4 = 0.5.
        assert!((g.busy_fraction(ResourceKind::Cpu) - 1.0).abs() < 1e-12);
        assert!((g.busy_fraction(ResourceKind::Gpu) - 0.5).abs() < 1e-12);
        assert_eq!(g.busy_fraction(ResourceKind::Network), 0.0);
    }

    #[test]
    fn remove_member_reforms_ordering() {
        let mut g = InterleaveGroup::form(
            vec![member(1, cpu_gpu(2, 1)), member(2, cpu_gpu(1, 2))],
            OrderingPolicy::Best,
        );
        g.remove_member(JobId(1), OrderingPolicy::Best);
        assert_eq!(g.len(), 1);
        assert_eq!(g.iteration_time(), secs(3)); // solo B
                                                 // Removing a non-member is a no-op.
        g.remove_member(JobId(99), OrderingPolicy::Best);
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn solo_group_is_identity() {
        let p = StageProfile::new(secs(1), secs(1), secs(2), secs(1));
        let g = InterleaveGroup::solo(member(7, p));
        assert_eq!(g.iteration_time(), p.iteration_time());
        assert!((g.total_normalized_throughput() - 1.0).abs() < 1e-12);
        assert_eq!(g.job_ids(), vec![JobId(7)]);
    }

    #[test]
    fn pair_efficiency_ranks_complements_above_clones() {
        let a = cpu_gpu(2, 1);
        let b = cpu_gpu(1, 2);
        let c = cpu_gpu(2, 1);
        let e_ab = pair_efficiency(&a, &b, OrderingPolicy::Best);
        let e_ac = pair_efficiency(&a, &c, OrderingPolicy::Best);
        assert!(e_ab > e_ac, "{e_ab} vs {e_ac}");
    }

    #[test]
    fn group_slowdown_never_below_one() {
        // Interleaving can never make an iteration faster than solo.
        let profiles = [
            StageProfile::new(secs(3), secs(1), secs(4), secs(1)),
            StageProfile::new(secs(1), secs(5), secs(1), secs(2)),
            StageProfile::new(secs(2), secs(2), secs(2), secs(2)),
            StageProfile::new(secs(4), secs(1), secs(1), secs(3)),
        ];
        let g = InterleaveGroup::form(
            profiles
                .iter()
                .enumerate()
                .map(|(i, &p)| member(i as u32, p))
                .collect(),
            OrderingPolicy::Best,
        );
        for i in 0..g.len() {
            assert!(
                g.slowdown(i) >= 1.0 - 1e-12,
                "member {i}: {}",
                g.slowdown(i)
            );
        }
    }
}
