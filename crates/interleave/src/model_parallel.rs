//! Model-parallel training support (§7 "Model parallel training").
//!
//! The paper's discussion sketches how Muri extends beyond data
//! parallelism: in pipeline-style model-parallel (MP) training, "for the
//! forward propagation, each worker has three stages, i.e., receiving
//! intermediate data from the previous worker, computing, and sending
//! intermediate data to the next worker. The first worker replaces the
//! first stage with loading data and preprocessing, while the last worker
//! replaces the last stage with synchronizing gradients." Muri then (i)
//! interleaves stages of one MP job with stages of the same propagation
//! direction in other jobs, and (ii) adjusts the interleaving efficiency
//! fed to the Blossom-based algorithm.
//!
//! This module implements that sketch: an MP job description, the
//! per-rank stage profiles it induces, and the rank-aligned interleaving
//! efficiency for pairing two MP jobs.

use crate::group::pair_efficiency;
use crate::ordering::OrderingPolicy;
use muri_workload::{JobId, SimDuration, StageProfile};
use serde::{Deserialize, Serialize};

/// A pipeline-style model-parallel training job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelParallelJob {
    /// Job id.
    pub id: JobId,
    /// Pipeline depth (number of ranks / GPUs); at least 1.
    pub ranks: u32,
    /// Data loading time per iteration (first rank only).
    pub load: SimDuration,
    /// Preprocessing time per iteration (first rank only).
    pub preprocess: SimDuration,
    /// Per-rank compute time per iteration (forward + backward share of
    /// one pipeline stage).
    pub compute_per_rank: SimDuration,
    /// Activation/gradient transfer time per pipeline boundary.
    pub transfer: SimDuration,
    /// Gradient/optimizer synchronization time (last rank only).
    pub sync: SimDuration,
}

impl ModelParallelJob {
    /// Per-rank stage profiles. Rank 0 loads and preprocesses instead of
    /// receiving; the last rank synchronizes instead of sending; interior
    /// ranks receive, compute, and send. Receives and sends both occupy
    /// the network resource, so a rank's network stage is their sum.
    pub fn worker_profiles(&self) -> Vec<StageProfile> {
        assert!(self.ranks >= 1, "MP job needs at least one rank");
        let n = self.ranks as usize;
        (0..n)
            .map(|r| {
                let first = r == 0;
                let last = r == n - 1;
                let load = if first { self.load } else { SimDuration::ZERO };
                let cpu = if first {
                    self.preprocess
                } else {
                    SimDuration::ZERO
                };
                let mut net = SimDuration::ZERO;
                if !first {
                    net += self.transfer; // receive from the previous rank
                }
                net += if last { self.sync } else { self.transfer }; // send or sync
                StageProfile::new(load, cpu, self.compute_per_rank, net)
            })
            .collect()
    }

    /// Serial per-iteration time of the whole pipeline when run alone
    /// (sum over one rank's stages plus the pipeline fill of the others'
    /// compute — the steady-state bound for an unpipelined iteration).
    pub fn solo_iteration_time(&self) -> SimDuration {
        self.worker_profiles()
            .iter()
            .map(muri_workload::StageProfile::iteration_time)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }
}

/// Interleaving efficiency of grouping two MP jobs of equal depth:
/// rank `i` of job A shares a GPU with rank `i` of job B, and stages of
/// the same propagation direction interleave (§7's rule (i)). The group's
/// efficiency — the quantity fed to the matching per §7's rule (ii) — is
/// the *worst* rank-pair efficiency, because intra-job pipeline coupling
/// makes the slowest rank pace the whole job (the Fig. 7 argument again).
pub fn mp_pair_efficiency(
    a: &ModelParallelJob,
    b: &ModelParallelJob,
    policy: OrderingPolicy,
) -> Option<f64> {
    if a.ranks != b.ranks {
        // Same-depth bucketing, exactly like the data-parallel GPU-count
        // buckets (§4.2): cross-depth grouping would cascade.
        return None;
    }
    let pa = a.worker_profiles();
    let pb = b.worker_profiles();
    pa.iter()
        .zip(&pb)
        .map(|(x, y)| pair_efficiency(x, y, policy))
        .min_by(f64::total_cmp)
        .or(Some(0.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn mp(id: u32, compute: u64, transfer: u64) -> ModelParallelJob {
        ModelParallelJob {
            id: JobId(id),
            ranks: 4,
            load: secs(1),
            preprocess: secs(1),
            compute_per_rank: secs(compute),
            transfer: secs(transfer),
            sync: secs(2),
        }
    }

    #[test]
    fn rank_profiles_follow_the_paper_sketch() {
        let job = mp(1, 3, 1);
        let profiles = job.worker_profiles();
        assert_eq!(profiles.len(), 4);
        // Rank 0: loads + preprocesses, sends once (no receive).
        assert_eq!(
            profiles[0].duration(muri_workload::ResourceKind::Storage),
            secs(1)
        );
        assert_eq!(
            profiles[0].duration(muri_workload::ResourceKind::Cpu),
            secs(1)
        );
        assert_eq!(
            profiles[0].duration(muri_workload::ResourceKind::Network),
            secs(1)
        );
        // Interior ranks: receive + send, no load/preprocess.
        assert_eq!(
            profiles[1].duration(muri_workload::ResourceKind::Storage),
            SimDuration::ZERO
        );
        assert_eq!(
            profiles[1].duration(muri_workload::ResourceKind::Network),
            secs(2)
        );
        // Last rank: receive + synchronize.
        assert_eq!(
            profiles[3].duration(muri_workload::ResourceKind::Network),
            secs(1) + secs(2)
        );
        // Every rank computes.
        for p in &profiles {
            assert_eq!(p.duration(muri_workload::ResourceKind::Gpu), secs(3));
        }
    }

    #[test]
    fn single_rank_mp_degenerates_to_data_parallel_shape() {
        let job = ModelParallelJob {
            id: JobId(1),
            ranks: 1,
            load: secs(2),
            preprocess: secs(1),
            compute_per_rank: secs(4),
            transfer: secs(9), // unused: no pipeline boundary traffic
            sync: secs(1),
        };
        let profiles = job.worker_profiles();
        assert_eq!(profiles.len(), 1);
        // load + preprocess + compute + sync only.
        assert_eq!(profiles[0].iteration_time(), secs(2 + 1 + 4 + 1));
    }

    #[test]
    fn complementary_mp_jobs_interleave_well() {
        // A compute-heavy pipeline against a transfer-heavy one.
        let compute_bound = mp(1, 6, 1);
        let network_bound = mp(2, 1, 4);
        let clone = mp(3, 6, 1);
        let good = mp_pair_efficiency(&compute_bound, &network_bound, OrderingPolicy::Best)
            .expect("same depth");
        let bad =
            mp_pair_efficiency(&compute_bound, &clone, OrderingPolicy::Best).expect("same depth");
        assert!(
            good > bad,
            "complementary MP pair ({good:.2}) must beat clones ({bad:.2})"
        );
    }

    #[test]
    fn cross_depth_grouping_is_refused() {
        let four = mp(1, 2, 1);
        let two = ModelParallelJob {
            ranks: 2,
            ..mp(2, 2, 1)
        };
        assert!(mp_pair_efficiency(&four, &two, OrderingPolicy::Best).is_none());
    }

    #[test]
    fn solo_iteration_is_paced_by_the_slowest_rank() {
        let job = mp(1, 3, 1);
        let worst = job
            .worker_profiles()
            .iter()
            .map(muri_workload::StageProfile::iteration_time)
            .max()
            .unwrap();
        assert_eq!(job.solo_iteration_time(), worst);
    }
}
