//! Job fusion (§4.1's road not taken).
//!
//! The paper observes that *fusing* jobs — concatenating the same stages
//! of multiple jobs into one virtual job — can unlock groupings plain
//! pairing cannot reach: fusing Fig. 4's A and C (each 2 CPU + 1 GPU)
//! yields a virtual job E with 4 CPU + 2 GPU, and E interleaves perfectly
//! (γ = 1) with a job F of 4 GPU + 2 CPU, "which is unreachable without
//! concatenating job A and job C". Muri rejects fusion because it blows
//! up the search space exponentially and complicates synchronization.
//!
//! This module implements fusion anyway — as an analysis tool: it lets
//! the repo *demonstrate* both the extra efficiency fusion can reach and
//! the combinatorial cost the paper cites for avoiding it.

use crate::efficiency::group_efficiency;
use crate::ordering::{choose_ordering, OrderingPolicy};
use muri_workload::{JobId, StageProfile};
use serde::{Deserialize, Serialize};

/// A virtual job formed by concatenating the stages of member jobs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FusedJob {
    /// The member jobs, in concatenation order.
    pub members: Vec<JobId>,
    /// The fused per-iteration profile: per resource, the sum of the
    /// members' stage durations (one fused iteration = one iteration of
    /// every member).
    pub profile: StageProfile,
}

impl FusedJob {
    /// Fuse a set of jobs. Panics on an empty set.
    pub fn fuse(jobs: &[(JobId, StageProfile)]) -> FusedJob {
        assert!(!jobs.is_empty(), "cannot fuse zero jobs");
        let mut profile = jobs[0].1;
        for (_, p) in &jobs[1..] {
            profile = profile.concat(p);
        }
        FusedJob {
            members: jobs.iter().map(|(id, _)| *id).collect(),
            profile,
        }
    }

    /// Number of member jobs.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the fusion is a single job.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// The best interleaving efficiency achievable by splitting `jobs` into
/// two fused sides and interleaving the sides against each other,
/// together with the chosen split (as a bitmask over `jobs`). This is
/// the exhaustive search the paper declines to run: all `2^(n−1) − 1`
/// bipartitions are evaluated.
pub fn best_fused_bipartition(jobs: &[(JobId, StageProfile)]) -> Option<(u32, f64)> {
    let n = jobs.len();
    if !(2..=16).contains(&n) {
        return None;
    }
    let mut best: Option<(u32, f64)> = None;
    // Enumerate bipartitions with job 0 pinned to side A (halves the
    // space; swapping sides changes nothing).
    for mask in 0..(1u32 << (n - 1)) {
        let mask = mask << 1; // job 0 always on side A (bit 0 clear)
        let side_a: Vec<(JobId, StageProfile)> = (0..n)
            .filter(|&i| mask & (1 << i) == 0)
            .map(|i| jobs[i])
            .collect();
        let side_b: Vec<(JobId, StageProfile)> = (0..n)
            .filter(|&i| mask & (1 << i) != 0)
            .map(|i| jobs[i])
            .collect();
        if side_b.is_empty() {
            continue;
        }
        let fused = [
            FusedJob::fuse(&side_a).profile,
            FusedJob::fuse(&side_b).profile,
        ];
        let ordering = choose_ordering(&fused, OrderingPolicy::Best);
        let gamma = group_efficiency(&fused, &ordering.offsets);
        if best.is_none_or(|(_, g)| gamma > g) {
            best = Some((mask, gamma));
        }
    }
    best
}

/// Number of candidate plans a fusion-aware grouper must consider for
/// `n` jobs (set partitions — the Bell number), versus the `O(n²)` pair
/// edges Muri's matching considers. Saturates at `u128::MAX`.
pub fn fusion_search_space(n: usize) -> u128 {
    // Bell numbers via the Bell triangle.
    let mut row = vec![1u128];
    for _ in 1..n {
        let mut next = Vec::with_capacity(row.len() + 1);
        let mut prev = *row.last().unwrap_or(&1);
        next.push(prev);
        for &x in &row {
            prev = prev.saturating_add(x);
            next.push(prev);
        }
        row = next;
    }
    *row.last().unwrap_or(&1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::pair_efficiency;
    use muri_workload::SimDuration;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn cpu_gpu(cpu: u64, gpu: u64) -> StageProfile {
        StageProfile::new(SimDuration::ZERO, secs(cpu), secs(gpu), SimDuration::ZERO)
    }

    #[test]
    fn fusing_concatenates_stages() {
        // The paper's example: fuse A and C (2 CPU + 1 GPU each) → E with
        // 4 CPU + 2 GPU.
        let a = (JobId(0), cpu_gpu(2, 1));
        let c = (JobId(1), cpu_gpu(2, 1));
        let e = FusedJob::fuse(&[a, c]);
        assert_eq!(e.profile, cpu_gpu(4, 2));
        assert_eq!(e.members, vec![JobId(0), JobId(1)]);
    }

    #[test]
    fn paper_fusion_example_reaches_unit_efficiency() {
        // E (4 CPU + 2 GPU) against F (2 CPU + 4 GPU): γ = 1, unreachable
        // by pairing A, C, F directly.
        let e = FusedJob::fuse(&[(JobId(0), cpu_gpu(2, 1)), (JobId(1), cpu_gpu(2, 1))]);
        let f = cpu_gpu(2, 4);
        let gamma_fused = pair_efficiency(&e.profile, &f, OrderingPolicy::Best);
        assert!((gamma_fused - 1.0).abs() < 1e-9, "γ(E,F) = {gamma_fused}");
        // Direct pairing of A with F is strictly worse.
        let gamma_direct = pair_efficiency(&cpu_gpu(2, 1), &f, OrderingPolicy::Best);
        assert!(gamma_direct < 1.0 - 1e-9);
    }

    #[test]
    fn best_bipartition_finds_the_paper_split() {
        let jobs = [
            (JobId(0), cpu_gpu(2, 1)), // A
            (JobId(1), cpu_gpu(2, 1)), // C
            (JobId(2), cpu_gpu(2, 4)), // F (gpu-heavy, twice the size)
        ];
        let (mask, gamma) = best_fused_bipartition(&jobs).expect("found");
        // Optimal: {A, C} vs {F} — F alone on side B (bit 2 set).
        assert_eq!(mask, 0b100, "split {mask:b}");
        assert!((gamma - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bipartition_rejects_degenerate_inputs() {
        assert!(best_fused_bipartition(&[]).is_none());
        assert!(best_fused_bipartition(&[(JobId(0), cpu_gpu(1, 1))]).is_none());
    }

    #[test]
    fn fusion_search_space_explodes() {
        // Bell numbers: the reason §4.1 avoids fusing.
        assert_eq!(fusion_search_space(1), 1);
        assert_eq!(fusion_search_space(3), 5);
        assert_eq!(fusion_search_space(5), 52);
        assert_eq!(fusion_search_space(10), 115_975);
        assert!(fusion_search_space(20) > 51_000_000_000_000u128);
        // Versus Muri's n² pair graph: at n = 20 that is 190 edges.
        assert!(fusion_search_space(20) > 190 * 1_000_000_000);
    }

    #[test]
    #[should_panic(expected = "zero jobs")]
    fn fusing_nothing_panics() {
        let _ = FusedJob::fuse(&[]);
    }
}
