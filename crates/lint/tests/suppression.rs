//! Suppression round-trips: a reasoned allow silences exactly its rule
//! on exactly its line; a bare allow silences nothing and is itself a
//! violation; S001 cannot be suppressed.

use muri_lint::{scan_source, CrateClass, FileContext, LintConfig, RuleId};

fn det_ctx() -> FileContext {
    FileContext {
        crate_name: "muri-core".to_string(),
        class: CrateClass::Deterministic,
        decision_path: false,
    }
}

fn rules_of(src: &str) -> Vec<RuleId> {
    let r = scan_source("fixture.rs", src, &det_ctx(), &LintConfig::default());
    let mut out: Vec<RuleId> = r.violations.iter().map(|v| v.rule).collect();
    out.sort();
    out
}

const ITERATION: &str = "use std::collections::HashMap;\n\
pub fn sum(m: &HashMap<u32, u64>) -> u64 {\n\
    m.values().sum()\n\
}\n";

#[test]
fn unsuppressed_baseline_fires() {
    assert_eq!(rules_of(ITERATION), vec![RuleId::D001]);
}

#[test]
fn trailing_reasoned_allow_passes() {
    let src = ITERATION.replace(
        "m.values().sum()",
        "m.values().sum() // muri-lint: allow(D001, reason = \"sum is order-independent\")",
    );
    let r = scan_source("fixture.rs", &src, &det_ctx(), &LintConfig::default());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn standalone_reasoned_allow_covers_next_line() {
    let src = ITERATION.replace(
        "m.values().sum()",
        "// muri-lint: allow(D001, reason = \"sum is order-independent\")\nm.values().sum()",
    );
    let r = scan_source("fixture.rs", &src, &det_ctx(), &LintConfig::default());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.suppressed, 1);
}

#[test]
fn bare_allow_fails_both_ways() {
    let src = ITERATION.replace(
        "m.values().sum()",
        "m.values().sum() // muri-lint: allow(D001)",
    );
    // The D001 is NOT silenced, and the reasonless allow adds S001.
    assert_eq!(rules_of(&src), vec![RuleId::D001, RuleId::S001]);
}

#[test]
fn empty_reason_counts_as_bare() {
    let src = ITERATION.replace(
        "m.values().sum()",
        "m.values().sum() // muri-lint: allow(D001, reason = \"  \")",
    );
    assert_eq!(rules_of(&src), vec![RuleId::D001, RuleId::S001]);
}

#[test]
fn allow_for_a_different_rule_does_not_leak() {
    let src = ITERATION.replace(
        "m.values().sum()",
        "m.values().sum() // muri-lint: allow(D002, reason = \"wrong rule\")",
    );
    assert_eq!(rules_of(&src), vec![RuleId::D001]);
}

#[test]
fn allow_on_a_different_line_does_not_leak() {
    let src = format!(
        "// muri-lint: allow(D001, reason = \"too far away to cover line 4\")\n{ITERATION}"
    );
    // The comment covers line 2 (`use …`); the iteration on line 4 stays.
    assert_eq!(rules_of(&src), vec![RuleId::D001]);
}

#[test]
fn multi_rule_allow_covers_each_listed_rule() {
    let src = "use std::collections::HashMap;\n\
pub fn probe(m: &HashMap<u32, u64>) -> u64 {\n\
    // muri-lint: allow(D001, D002, reason = \"calibration probe, order and time unobserved\")\n\
    m.values().sum::<u64>() + std::time::Instant::now().elapsed().as_micros() as u64\n\
}\n";
    let r = scan_source("fixture.rs", src, &det_ctx(), &LintConfig::default());
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert_eq!(r.suppressed, 2, "one D001 + one D002 silenced");
}

#[test]
fn s001_cannot_be_suppressed() {
    // A reasonless allow plus a reasoned allow *for S001* on the same
    // line: the S001 must still be reported.
    let src = "use std::collections::HashMap;\n\
pub fn sum(m: &HashMap<u32, u64>) -> u64 {\n\
    // muri-lint: allow(D001)\n\
    // muri-lint: allow(S001, reason = \"please look away\")\n\
    m.values().sum()\n\
}\n";
    let rules = rules_of(src);
    assert!(
        rules.contains(&RuleId::S001),
        "S001 must be unsuppressable: {rules:?}"
    );
    assert!(
        rules.contains(&RuleId::D001),
        "the bare allow must not silence D001: {rules:?}"
    );
}
