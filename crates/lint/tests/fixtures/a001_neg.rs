// A001 negative: every public entry point carries its audit story —
// the feature hook inline, delegation to a hooked sibling, a call into
// the audited engine loop, or being audit-gated itself.
pub struct Plan;
pub struct Engine;

impl Engine {
    pub fn run(&mut self) -> u32 {
        0
    }
}

pub fn plan_groups_with(jobs: &[u32]) -> Plan {
    let _ = jobs;
    let plan = Plan;
    #[cfg(feature = "audit")]
    debug_audit(&plan);
    plan
}

pub fn plan_groups(jobs: &[u32]) -> Plan {
    plan_groups_with(jobs)
}

pub fn simulate_quick(steps: u32) -> u32 {
    let mut engine = Engine;
    let _ = steps;
    engine.run()
}

#[cfg(feature = "audit")]
pub fn simulate_audited(steps: u32) -> u32 {
    steps
}

#[cfg(feature = "audit")]
fn debug_audit(_plan: &Plan) {}
