// A001 positive: public entry points with no visible audit story.
// Expected: A001 at lines 5 (plan_groups) and 10 (simulate_quick).
pub struct Plan;

pub fn plan_groups(jobs: &[u32]) -> Plan {
    let _ = jobs;
    Plan
}

pub fn simulate_quick(steps: u32) -> u32 {
    steps * 2
}
