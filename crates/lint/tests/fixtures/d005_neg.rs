// D005 negative: deterministic code renders journal text and hands it
// to the sanctioned persistence module; the one direct write sits in
// test code, which is exempt.

pub fn render_journal(lines: &[String]) -> String {
    lines.join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writing_a_scratch_file_in_a_test_is_fine() {
        let body = render_journal(&["{}".to_string()]);
        std::fs::write("/tmp/scratch.jsonl", body).unwrap();
    }
}
