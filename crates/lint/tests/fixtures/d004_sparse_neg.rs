// D004 negative: a SparseGraph construction site in the scaled-integer
// fixed-point convention. Weights arrive as scaled i64 (quantized at
// the weight_from_f64 boundary elsewhere); the keep-threshold is
// consumed through its pre-scaled accessor, so no float token ever
// appears where edges are selected and ranked.
pub const WEIGHT_SCALE: i64 = 1 << 20;

pub fn build_candidate_edges(
    weights: &[(usize, usize, i64)],
    keep_weight: i64,
) -> Vec<(i64, usize, usize)> {
    let mut edges = Vec::new();
    for &(u, v, w) in weights {
        if w > 0 && w >= keep_weight {
            edges.push((w, u, v));
        }
    }
    edges.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    edges
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_tolerances_in_tests_are_fine() {
        let loss_bound = 0.05_f64;
        assert!(loss_bound < 1.0);
    }
}
