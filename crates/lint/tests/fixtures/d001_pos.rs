// D001 positive: order-dependent iteration over hash collections in a
// deterministic crate. Expected: D001 at lines 11, 14, 17.
use std::collections::{HashMap, HashSet};

pub struct Index {
    by_id: HashMap<u32, String>,
}

impl Index {
    pub fn dump(&self, seen: HashSet<u32>) -> Vec<String> {
        let mut out: Vec<String> = self.by_id.values().cloned().collect();
        let fresh = HashMap::new();
        let _ = fresh.get(&1u32);
        for (_, v) in &self.by_id {
            out.push(v.clone());
        }
        for s in seen {
            out.push(s.to_string());
        }
        out
    }
}
