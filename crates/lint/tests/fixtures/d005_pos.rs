// D005 positive: filesystem writes and fsyncs in a deterministic
// crate, outside the sanctioned persistence module.
// Expected: D005 at lines 5, 8, 9, 10, 11, 12.

use std::fs::File;

pub fn persist(path: &str, body: &str) -> std::io::Result<()> {
    std::fs::write(path, body)?;
    std::fs::rename(path, "renamed")?;
    let out = File::create(path)?;
    out.sync_all()?;
    let _opts = std::fs::OpenOptions::new();
    Ok(())
}
