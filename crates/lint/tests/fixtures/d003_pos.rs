// D003 positive: unseeded randomness.
// Expected: D003 at lines 6, 7, 8.
use rand::{rngs::SmallRng, Rng, SeedableRng};

pub fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    let mut other = SmallRng::from_entropy();
    let bonus: u64 = rand::random();
    rng.gen::<u64>() + other.gen::<u64>() + bonus
}
