// D002 positive: wall-clock reads in a deterministic crate.
// Expected: D002 at lines 6 and 9.
use std::time::{Instant, SystemTime};

pub fn measure_pass() -> u128 {
    let start = Instant::now();
    busy_work();
    let elapsed = start.elapsed().as_micros();
    let _stamp = SystemTime::now();
    elapsed
}

fn busy_work() {}
