// D004 negative: a decision path ranking entirely in the scaled-integer
// fixed-point convention. Integer literals, shifts, and i128 widening
// are all fine; the float boundary lives elsewhere (weight_from_f64).
pub const WEIGHT_SCALE: i64 = 1_000_000;

pub fn rank(score_a: i64, score_b: i64) -> bool {
    let a = i128::from(score_a) * i128::from(WEIGHT_SCALE);
    let b = i128::from(score_b) * i128::from(WEIGHT_SCALE) / 2;
    a + b > i128::from(WEIGHT_SCALE)
}

#[cfg(test)]
mod tests {
    #[test]
    fn float_in_tests_is_fine() {
        let x = 0.5_f64;
        assert!(x < 1.0);
    }
}
