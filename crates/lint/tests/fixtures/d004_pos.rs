// D004 positive (scanned as a decision-path file): float types and
// literals inside ranking logic. Expected: D004 at line 5 (f64),
// line 6 (f64 and 0.5), line 7 (f64 and 1e6) — five findings.
pub fn rank(score_a: u64, score_b: u64) -> bool {
    let a = score_a as f64;
    let b = score_b as f64 * 0.5;
    let threshold: f64 = 1e6;
    a + b > threshold
}
