// C001 negative: the approved pattern — scoped threads, joined before
// the scope returns, so borrows need no 'static and shutdown order is
// deterministic.
pub fn fan_out(work: &[u64]) -> u64 {
    let mut totals = vec![0u64; work.len()];
    std::thread::scope(|s| {
        for (slot, w) in totals.iter_mut().zip(work) {
            s.spawn(move || {
                *slot = w * 2;
            });
        }
    });
    totals.iter().sum()
}
