// C001 positive: raw free-running threads.
// Expected: C001 at lines 5 and 9.
pub fn fan_out(work: Vec<u64>) {
    for w in work {
        std::thread::spawn(move || {
            let _ = w;
        });
    }
    let builder = std::thread::Builder::new();
    let _ = builder;
}
