// D002 negative: deterministic code consults only virtual time; the one
// wall-clock read sits in test code.
pub struct SimTime(pub u64);

pub fn advance(now: SimTime, by: u64) -> SimTime {
    SimTime(now.0 + by)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_a_test_is_fine() {
        let t = std::time::Instant::now();
        let _ = advance(SimTime(0), 5);
        assert!(t.elapsed().as_secs() < 60);
    }
}
