// D004 positive (scanned as a decision-path file): a SparseGraph
// construction site letting float weights into the CSR edge list.
// Weights must enter as scaled i64 — the conversion boundary is
// weight_from_f64, never the candidate builder. Expected: D004 at
// line 8 (f64), line 9 (0.95), line 11 (f64 and 0.5) — four findings.
pub fn build_candidate_edges(gammas: &[(usize, usize, u64)]) -> Vec<(i64, usize, usize)> {
    let mut edges = Vec::new();
    let keep_threshold = 0.95_f64;
    let scale = 0.95;
    for &(u, v, g) in gammas {
        let w = g as f64 * scale * 0.5;
        if w > keep_threshold {
            edges.push((w as i64, u, v));
        }
    }
    edges
}
