// S001 positive: suppressions that fail hygiene.
// Expected: S001 at lines 6 (no reason), 8 (unknown rule), 10
// (malformed), plus the underlying D002 still reported at line 8.
use std::time::Instant;

// muri-lint: allow(D002)
pub fn bare() -> Instant {
    Instant::now() // muri-lint: allow(D999, reason = "wrong rule id")
}
// muri-lint: silence this file
pub fn tail() {}
