// D003 negative: every rng derives from an explicit u64 seed, so the
// run replays. Mentions of thread_rng in comments or strings are not
// code.
use rand::{rngs::SmallRng, Rng, SeedableRng};

pub fn roll(seed: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let banned = "thread_rng is banned here";
    let _ = banned;
    rng.gen()
}
