// S001 negative: a well-formed, reasoned suppression — it silences its
// target and is itself silent.
use std::time::Instant;

pub fn calibration_probe() -> Instant {
    // muri-lint: allow(D002, reason = "one-shot calibration, result never feeds planning")
    Instant::now()
}

/// Doc comments are exempt from suppression parsing, so documentation
/// may spell out the grammar — even a bare `// muri-lint: allow(D001)` —
/// without tripping S001.
pub fn documented() {}
