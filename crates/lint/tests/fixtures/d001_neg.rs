// D001 negative: hash maps used for order-independent lookups, ordered
// collections iterated freely, and hash iteration confined to test code.
use std::collections::{BTreeMap, HashMap};

pub struct Cache {
    memo: HashMap<u64, u64>,
    ordered: BTreeMap<u64, u64>,
}

impl Cache {
    pub fn lookup(&mut self, k: u64) -> Option<u64> {
        if let Some(&v) = self.memo.get(&k) {
            return Some(v);
        }
        self.memo.insert(k, k * 2);
        self.memo.remove(&(k + 1));
        None
    }

    pub fn walk(&self) -> Vec<u64> {
        // BTreeMap iteration is deterministic: not a finding.
        self.ordered.values().copied().collect()
    }
}

pub struct Spec {
    /// Shares the name `memo` with the hash-typed field above, but this
    /// one is a Vec on a different type.
    pub memo: Vec<u64>,
}

pub fn total(spec: &Spec) -> u64 {
    // Receiver is `spec`, not `self` or a bare binding: the name-based
    // pass cannot see its type, so it must stay silent.
    spec.memo.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_iteration_in_tests_is_fine() {
        let memo: HashMap<u64, u64> = HashMap::new();
        for (_, v) in &memo {
            let _ = v;
        }
    }
}
