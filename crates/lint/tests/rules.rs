//! Golden fixture corpus: every rule has a positive fixture (expected
//! findings, by line) and a negative fixture (clean), and every positive
//! case goes dark when its rule is disabled — so each rule is provably
//! the one doing the catching, and CI fails if a rule is turned off.

use muri_lint::{scan_source, CrateClass, FileContext, FileResult, LintConfig, RuleId};

fn det_ctx() -> FileContext {
    FileContext {
        crate_name: "muri-core".to_string(),
        class: CrateClass::Deterministic,
        decision_path: false,
    }
}

fn harness_ctx() -> FileContext {
    FileContext {
        crate_name: "muri-cli".to_string(),
        class: CrateClass::Harness,
        decision_path: false,
    }
}

fn decision_ctx() -> FileContext {
    FileContext {
        crate_name: "muri-core".to_string(),
        class: CrateClass::Deterministic,
        decision_path: true,
    }
}

fn scan(src: &str, ctx: &FileContext, cfg: &LintConfig) -> FileResult {
    scan_source("fixture.rs", src, ctx, cfg)
}

/// The (rule, line) pairs of a result, sorted.
fn findings(r: &FileResult) -> Vec<(RuleId, u32)> {
    let mut out: Vec<(RuleId, u32)> = r.violations.iter().map(|v| (v.rule, v.line)).collect();
    out.sort();
    out
}

/// Assert the positive fixture yields exactly `expected` under the full
/// config, and zero findings of `rule` once that rule is disabled.
fn check_rule(rule: RuleId, pos: &str, neg: &str, ctx: &FileContext, expected: &[(RuleId, u32)]) {
    let full = LintConfig::default();
    let got = findings(&scan(pos, ctx, &full));
    assert_eq!(got, expected, "{rule} positive fixture");

    let neg_result = scan(neg, ctx, &full);
    assert!(
        neg_result.violations.is_empty(),
        "{rule} negative fixture must be clean, got {:?}",
        neg_result.violations
    );

    let disabled = scan(pos, ctx, &LintConfig::without(rule));
    assert!(
        !disabled.violations.iter().any(|v| v.rule == rule),
        "disabling {rule} must silence its findings"
    );
    // And the findings really were attributable to this rule: with only
    // this rule enabled, the rule's subset of `expected` comes back.
    let only = scan(pos, ctx, &LintConfig::only(rule));
    let want: Vec<(RuleId, u32)> = expected
        .iter()
        .copied()
        .filter(|&(r, _)| r == rule)
        .collect();
    assert_eq!(findings(&only), want, "{rule} only-this-rule scan");
}

#[test]
fn d001_hash_iteration() {
    check_rule(
        RuleId::D001,
        include_str!("fixtures/d001_pos.rs"),
        include_str!("fixtures/d001_neg.rs"),
        &det_ctx(),
        &[(RuleId::D001, 11), (RuleId::D001, 14), (RuleId::D001, 17)],
    );
}

#[test]
fn d001_is_scoped_to_deterministic_crates() {
    let pos = include_str!("fixtures/d001_pos.rs");
    let r = scan(pos, &harness_ctx(), &LintConfig::default());
    assert!(
        r.violations.is_empty(),
        "harness crates may iterate hash maps: {:?}",
        r.violations
    );
}

#[test]
fn d002_wall_clock() {
    check_rule(
        RuleId::D002,
        include_str!("fixtures/d002_pos.rs"),
        include_str!("fixtures/d002_neg.rs"),
        &det_ctx(),
        &[(RuleId::D002, 6), (RuleId::D002, 9)],
    );
}

#[test]
fn d002_is_scoped_to_deterministic_crates() {
    let pos = include_str!("fixtures/d002_pos.rs");
    let obs = FileContext {
        crate_name: "muri-telemetry".to_string(),
        class: CrateClass::Observability,
        decision_path: false,
    };
    assert!(scan(pos, &obs, &LintConfig::default())
        .violations
        .is_empty());
    assert!(scan(pos, &harness_ctx(), &LintConfig::default())
        .violations
        .is_empty());
}

#[test]
fn d002_sanctions_exactly_the_serve_realtime_clock() {
    // muri-serve is a deterministic crate, but its wall→SimTime boundary
    // (crates/serve/src/realtime.rs) is on the sanction list: the same
    // wall-clock read is clean there and a violation in any other serve
    // module. The positive fixture pins the lines so a lexer or sanction
    // change that widens the hole fails loudly.
    let pos = include_str!("fixtures/d002_pos.rs");
    let serve_ctx = FileContext {
        crate_name: "muri-serve".to_string(),
        class: CrateClass::Deterministic,
        decision_path: false,
    };
    let cfg = LintConfig::only(RuleId::D002);

    let sanctioned = scan_source("crates/serve/src/realtime.rs", pos, &serve_ctx, &cfg);
    assert!(
        sanctioned.violations.is_empty(),
        "the sanctioned realtime clock site must be clean: {:?}",
        sanctioned.violations
    );

    let unsanctioned = scan_source("crates/serve/src/server.rs", pos, &serve_ctx, &cfg);
    assert_eq!(
        findings(&unsanctioned),
        &[(RuleId::D002, 6), (RuleId::D002, 9)],
        "every other serve module keeps the full D002 discipline"
    );
}

#[test]
fn d003_unseeded_randomness() {
    check_rule(
        RuleId::D003,
        include_str!("fixtures/d003_pos.rs"),
        include_str!("fixtures/d003_neg.rs"),
        &harness_ctx(), // D003 applies everywhere, even in harnesses
        &[(RuleId::D003, 6), (RuleId::D003, 7), (RuleId::D003, 8)],
    );
}

#[test]
fn d004_decision_path_floats() {
    check_rule(
        RuleId::D004,
        include_str!("fixtures/d004_pos.rs"),
        include_str!("fixtures/d004_neg.rs"),
        &decision_ctx(),
        &[
            (RuleId::D004, 5),
            (RuleId::D004, 6),
            (RuleId::D004, 6),
            (RuleId::D004, 7),
            (RuleId::D004, 7),
        ],
    );
}

#[test]
fn d004_sparse_graph_construction_sites() {
    // The sharded planner's SparseGraph candidate builders are on the
    // decision path: weights must enter as scaled i64 (quantized at the
    // weight_from_f64 boundary), never as floats at the edge-selection
    // site. Pinned so the sparse cold-start path can't drift onto floats.
    check_rule(
        RuleId::D004,
        include_str!("fixtures/d004_sparse_pos.rs"),
        include_str!("fixtures/d004_sparse_neg.rs"),
        &decision_ctx(),
        &[
            (RuleId::D004, 8),
            (RuleId::D004, 9),
            (RuleId::D004, 11),
            (RuleId::D004, 11),
        ],
    );
}

#[test]
fn sparse_graph_and_shard_files_are_decision_path() {
    // The workspace scan must treat the CSR candidate builder and the
    // sharded planner as decision-path files — D004 coverage follows
    // the list, so membership is part of the contract.
    for file in [
        "crates/matching/src/sparse_graph.rs",
        "crates/core/src/shard.rs",
    ] {
        assert!(
            muri_lint::DECISION_PATH_FILES.contains(&file),
            "{file} must stay on the D004 decision path"
        );
    }
}

#[test]
fn d004_is_scoped_to_decision_paths() {
    let pos = include_str!("fixtures/d004_pos.rs");
    let r = scan(pos, &det_ctx(), &LintConfig::default());
    assert!(
        r.violations.is_empty(),
        "floats off the decision path are fine: {:?}",
        r.violations
    );
}

#[test]
fn d005_filesystem_persistence() {
    check_rule(
        RuleId::D005,
        include_str!("fixtures/d005_pos.rs"),
        include_str!("fixtures/d005_neg.rs"),
        &det_ctx(),
        &[
            (RuleId::D005, 5),
            (RuleId::D005, 8),
            (RuleId::D005, 9),
            (RuleId::D005, 10),
            (RuleId::D005, 11),
            (RuleId::D005, 12),
        ],
    );
}

#[test]
fn d005_is_scoped_to_deterministic_crates() {
    let pos = include_str!("fixtures/d005_pos.rs");
    let r = scan(pos, &harness_ctx(), &LintConfig::default());
    assert!(
        r.violations.is_empty(),
        "harness crates may touch the filesystem: {:?}",
        r.violations
    );
}

#[test]
fn d005_sanctions_exactly_the_serve_journal() {
    // muri-serve is a deterministic crate, but its write-ahead journal
    // module (crates/serve/src/journal.rs) is on the sanction list: the
    // same writes and fsyncs are clean there and violations in any
    // other serve module. Pinned by line so a lexer or sanction change
    // that widens the hole fails loudly.
    let pos = include_str!("fixtures/d005_pos.rs");
    let serve_ctx = FileContext {
        crate_name: "muri-serve".to_string(),
        class: CrateClass::Deterministic,
        decision_path: false,
    };
    let cfg = LintConfig::only(RuleId::D005);

    let sanctioned = scan_source("crates/serve/src/journal.rs", pos, &serve_ctx, &cfg);
    assert!(
        sanctioned.violations.is_empty(),
        "the sanctioned journal module must be clean: {:?}",
        sanctioned.violations
    );

    let unsanctioned = scan_source("crates/serve/src/server.rs", pos, &serve_ctx, &cfg);
    assert_eq!(
        findings(&unsanctioned),
        &[
            (RuleId::D005, 5),
            (RuleId::D005, 8),
            (RuleId::D005, 9),
            (RuleId::D005, 10),
            (RuleId::D005, 11),
            (RuleId::D005, 12),
        ],
        "every other serve module keeps the full D005 discipline"
    );
}

#[test]
fn c001_raw_thread_spawn() {
    check_rule(
        RuleId::C001,
        include_str!("fixtures/c001_pos.rs"),
        include_str!("fixtures/c001_neg.rs"),
        &harness_ctx(),
        &[(RuleId::C001, 5), (RuleId::C001, 9)],
    );
}

#[test]
fn a001_audit_hooks() {
    check_rule(
        RuleId::A001,
        include_str!("fixtures/a001_pos.rs"),
        include_str!("fixtures/a001_neg.rs"),
        &det_ctx(),
        &[(RuleId::A001, 5), (RuleId::A001, 10)],
    );
}

#[test]
fn a001_is_scoped_to_deterministic_crates() {
    let pos = include_str!("fixtures/a001_pos.rs");
    assert!(scan(pos, &harness_ctx(), &LintConfig::default())
        .violations
        .is_empty());
}

#[test]
fn s001_suppression_hygiene() {
    check_rule(
        RuleId::S001,
        include_str!("fixtures/s001_pos.rs"),
        include_str!("fixtures/s001_neg.rs"),
        &det_ctx(),
        &[
            (RuleId::D002, 8),
            (RuleId::S001, 6),
            (RuleId::S001, 8),
            (RuleId::S001, 10),
        ],
    );
}

#[test]
fn s001_negative_fixture_suppresses_exactly_one() {
    let neg = include_str!("fixtures/s001_neg.rs");
    let r = scan(neg, &det_ctx(), &LintConfig::default());
    assert!(r.violations.is_empty());
    assert_eq!(r.suppressed, 1, "the reasoned allow silences one D002");
}
