//! The linter run against the real workspace — the same gate
//! `scripts/ci.sh` enforces, kept in tier-1 tests so `cargo test` alone
//! catches a determinism regression. Also pins the audit-trail
//! guarantee: every suppression in the tree carries a written reason
//! (S001 enforces this; a clean scan implies it).

use muri_lint::{find_workspace_root, scan_workspace, LintConfig};
use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let start = Path::new(env!("CARGO_MANIFEST_DIR"));
    let root = find_workspace_root(start).expect("workspace root above crates/lint");
    let report = scan_workspace(&root, &LintConfig::default()).expect("scan must succeed");
    assert!(
        report.crates_scanned >= 12,
        "expected the full workspace, saw {} crates",
        report.crates_scanned
    );
    assert!(
        report.files_scanned >= 40,
        "expected the full workspace, saw {} files",
        report.files_scanned
    );
    assert!(
        report.is_clean(),
        "workspace must be muri-lint clean:\n{}",
        report.render_human()
    );
}
