//! # muri-lint
//!
//! A workspace-specific static analysis pass enforcing the determinism
//! and audit-coverage contracts everything in this reproduction rests
//! on: bit-identical plans at 1/2/4 workers, byte-identical SimReports
//! under seeded faults, replayable journals. Those contracts are
//! otherwise enforced only dynamically — by tests that happen to
//! exercise the right paths — and a single stray `HashMap` iteration or
//! wall-clock read in a planning path breaks replay silently. `muri-lint`
//! catches that class of bug at CI time, before any seed runs.
//!
//! The analyzer is deliberately dependency-free: a hand-rolled lexer
//! ([`lexer`]) and token-sequence matching ([`rules`]) over
//! `crates/*/src/**.rs`, consistent with the vendored-only policy (no
//! `syn`). Each rule documents its lexical heuristic; escape hatches are
//! inline suppressions —
//!
//! ```text
//! // muri-lint: allow(D001, reason = "read-modify-write, order unobserved")
//! ```
//!
//! — and a suppression without a reason is itself a violation (S001).
//!
//! Run it as `muri lint [--json]` (exit 0 clean, 3 on violations — the
//! CLI-wide convention) or programmatically via [`scan_workspace`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod report;
pub mod rules;
pub mod source;

pub use report::LintReport;
pub use rules::{CrateClass, FileContext, FileResult, RuleId, Violation};
pub use source::{ScannedFile, Suppression};

use std::fs;
use std::path::{Path, PathBuf};

/// Crates whose output must be bit-identical across runs, worker counts,
/// and replays. D001/D002/A001 apply here; this is the set named in the
/// determinism contract (DESIGN.md) — the planning pipeline end to end.
pub const DETERMINISTIC_CRATES: [&str; 8] = [
    "muri-core",
    "muri-matching",
    "muri-interleave",
    "muri-sim",
    "muri-cluster",
    "muri-workload",
    "muri-engine",
    "muri-serve",
];

/// Crates that own the wall clock and measurement: exempt from D002.
pub const OBSERVABILITY_CRATES: [&str; 2] = ["muri-telemetry", "muri-bench"];

/// Individually sanctioned wall-clock sites inside deterministic crates,
/// with the reason each is allowed. D002 skips exactly these files;
/// everything else in the crate keeps the full discipline. Today this
/// is the daemon's single wall→scheduler time boundary: `WallClock`
/// maps host time onto `SimTime` to decide *when* queued events are
/// released, never *what* the scheduler decides — which is what keeps
/// the daemon's deterministic replay mode byte-equivalent to the
/// simulator.
pub const D002_SANCTIONED_CLOCK_FILES: [(&str, &str); 1] = [(
    "crates/serve/src/realtime.rs",
    "the daemon's one-way wall-clock -> SimTime boundary (event release \
     timing only; planning inputs stay deterministic)",
)];

/// Individually sanctioned filesystem-persistence sites inside
/// deterministic crates, with the reason each is allowed. D005 skips
/// exactly these files. Today this is the daemon's write-ahead journal:
/// every durable write and fsync in `muri-serve` lives in this one
/// module so the durability discipline — group-committed `sync_data`
/// per command burst, atomic temp+rename+dir-fsync compaction,
/// fail-stop on sync error — is reviewable in one place. A write or
/// fsync appearing anywhere else in a deterministic crate is a
/// durability hole the crash-recovery proof cannot see.
pub const D005_SANCTIONED_PERSISTENCE_FILES: [(&str, &str); 1] = [(
    "crates/serve/src/journal.rs",
    "the daemon's single write-ahead journal module: all durable writes \
     and fsyncs are group-committed and compacted here by design",
)];

/// Files on the scheduler decision path, where the scaled-integer
/// fixed-point convention is mandatory (D004). Floats are confined to
/// the conversion boundary (`weight_from_f64` in `muri-matching::graph`)
/// and to γ modeling — never to the code that compares and ranks.
pub const DECISION_PATH_FILES: [&str; 6] = [
    "crates/core/src/scheduler.rs",
    "crates/core/src/policy.rs",
    "crates/core/src/shard.rs",
    "crates/matching/src/blossom.rs",
    "crates/matching/src/greedy.rs",
    "crates/matching/src/sparse_graph.rs",
];

/// Which rules to run. Defaults to all of them; tests narrow this to
/// prove each fixture is attributable to exactly one rule.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Enabled rules, in check order.
    pub enabled: Vec<RuleId>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            enabled: RuleId::ALL.to_vec(),
        }
    }
}

impl LintConfig {
    /// A config with every rule except `disabled` — for rule-attribution
    /// tests.
    pub fn without(disabled: RuleId) -> Self {
        LintConfig {
            enabled: RuleId::ALL.into_iter().filter(|&r| r != disabled).collect(),
        }
    }

    /// A config with only `rule` enabled.
    pub fn only(rule: RuleId) -> Self {
        LintConfig {
            enabled: vec![rule],
        }
    }
}

/// Classify a crate by its Cargo package name.
pub fn classify_crate(name: &str) -> CrateClass {
    if DETERMINISTIC_CRATES.contains(&name) {
        CrateClass::Deterministic
    } else if OBSERVABILITY_CRATES.contains(&name) {
        CrateClass::Observability
    } else {
        CrateClass::Harness
    }
}

/// Scan a single source text under an explicit context — the unit the
/// fixture corpus drives.
pub fn scan_source(rel_path: &str, src: &str, ctx: &FileContext, cfg: &LintConfig) -> FileResult {
    let file = ScannedFile::new(rel_path, src);
    rules::check_file(&file, ctx, &cfg.enabled)
}

/// A scan failure (I/O or workspace-shape problems).
#[derive(Debug)]
pub struct LintError {
    /// What went wrong, with the path involved.
    pub message: String,
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for LintError {}

fn err(message: String) -> LintError {
    LintError { message }
}

/// Scan the whole workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`): every `crates/*/src/**.rs` plus the facade
/// crate's `src/`. Files are visited in sorted path order so the report
/// is deterministic — the linter holds itself to the rules it enforces.
pub fn scan_workspace(root: &Path, cfg: &LintConfig) -> Result<LintReport, LintError> {
    let crates_dir = root.join("crates");
    let mut members: Vec<(String, PathBuf)> = Vec::new(); // (crate name, src dir)
    let entries = fs::read_dir(&crates_dir)
        .map_err(|e| err(format!("cannot read {}: {e}", crates_dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| err(format!("readdir {}: {e}", crates_dir.display())))?;
        let dir = entry.path();
        if !dir.is_dir() {
            continue;
        }
        let manifest = dir.join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let name = package_name(&manifest)?;
        members.push((name, dir.join("src")));
    }
    // The facade crate at the workspace root.
    if root.join("src").is_dir() && root.join("Cargo.toml").is_file() {
        members.push(("muri".to_string(), root.join("src")));
    }
    members.sort();

    let mut report = LintReport::default();
    for (crate_name, src_dir) in members {
        if !src_dir.is_dir() {
            continue;
        }
        report.crates_scanned += 1;
        let class = classify_crate(&crate_name);
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let rel = rel_path(root, &path);
            let ctx = FileContext {
                crate_name: crate_name.clone(),
                class,
                decision_path: DECISION_PATH_FILES.contains(&rel.as_str()),
            };
            let src = fs::read_to_string(&path)
                .map_err(|e| err(format!("cannot read {}: {e}", path.display())))?;
            let result = scan_source(&rel, &src, &ctx, cfg);
            report.files_scanned += 1;
            report.suppressed += result.suppressed;
            report.violations.extend(result.violations);
        }
    }
    Ok(report)
}

/// Locate the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` contains a `[workspace]` section.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.lines().any(|l| l.trim() == "[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Recursively collect `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries =
        fs::read_dir(dir).map_err(|e| err(format!("cannot read {}: {e}", dir.display())))?;
    for entry in entries {
        let entry = entry.map_err(|e| err(format!("readdir {}: {e}", dir.display())))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Extract `name = "…"` from the `[package]` section of a manifest.
fn package_name(manifest: &Path) -> Result<String, LintError> {
    let text = fs::read_to_string(manifest)
        .map_err(|e| err(format!("cannot read {}: {e}", manifest.display())))?;
    let mut in_package = false;
    for line in text.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_package = line == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = line.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let rest = rest.trim();
                    let name = rest.trim_matches('"');
                    if !name.is_empty() {
                        return Ok(name.to_string());
                    }
                }
            }
        }
    }
    Err(err(format!("no package name in {}", manifest.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_tables() {
        assert_eq!(classify_crate("muri-core"), CrateClass::Deterministic);
        assert_eq!(classify_crate("muri-engine"), CrateClass::Deterministic);
        assert_eq!(classify_crate("muri-serve"), CrateClass::Deterministic);
        assert_eq!(classify_crate("muri-telemetry"), CrateClass::Observability);
        assert_eq!(classify_crate("muri-cli"), CrateClass::Harness);
        assert_eq!(classify_crate("muri-lint"), CrateClass::Harness);
    }

    #[test]
    fn sanctioned_clock_files_carry_reasons() {
        for (path, reason) in D002_SANCTIONED_CLOCK_FILES {
            assert!(path.starts_with("crates/"), "sanction path {path:?}");
            assert!(
                !reason.trim().is_empty(),
                "sanction for {path} needs a reason"
            );
        }
    }

    #[test]
    fn sanctioned_persistence_files_carry_reasons() {
        for (path, reason) in D005_SANCTIONED_PERSISTENCE_FILES {
            assert!(path.starts_with("crates/"), "sanction path {path:?}");
            assert!(
                !reason.trim().is_empty(),
                "sanction for {path} needs a reason"
            );
        }
        // The journal module is the only persistence hole, and it stays
        // inside the daemon crate.
        assert_eq!(
            D005_SANCTIONED_PERSISTENCE_FILES[0].0,
            "crates/serve/src/journal.rs"
        );
    }

    #[test]
    fn config_without_and_only() {
        assert!(!LintConfig::without(RuleId::D001)
            .enabled
            .contains(&RuleId::D001));
        assert_eq!(LintConfig::only(RuleId::C001).enabled, vec![RuleId::C001]);
        assert_eq!(LintConfig::default().enabled.len(), RuleId::ALL.len());
    }
}
