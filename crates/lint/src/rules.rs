//! The lint rules. Each rule is a pure function over a [`ScannedFile`]
//! plus its [`FileContext`]; `check_file` runs the enabled set, reports
//! unreasoned suppressions (S001), and then applies the reasoned ones.
//!
//! | id   | invariant                                                        |
//! |------|------------------------------------------------------------------|
//! | D001 | no order-dependent `HashMap`/`HashSet` iteration in deterministic crates |
//! | D002 | no wall-clock reads (`Instant::now`, `SystemTime::now`) in deterministic crates |
//! | D003 | no unseeded randomness (`thread_rng`, `from_entropy`, `rand::random`) anywhere |
//! | D004 | no float types/literals in scheduler decision paths (scaled-integer convention) |
//! | D005 | no filesystem writes/fsyncs outside the sanctioned journal module in deterministic crates |
//! | C001 | no raw `std::thread::spawn` / `thread::Builder` — use scoped threads |
//! | A001 | public `plan_*`/`simulate*` entry points carry the `audit` debug hooks |
//! | S001 | every suppression names known rules and carries a written reason |
//!
//! All matching is token-sequence based (see [`crate::lexer`]); test code
//! (`#[cfg(test)]` / `#[test]` items) is exempt from every rule except
//! S001, and each rule documents the lexical heuristic it uses so a
//! reader can predict both its catches and its blind spots.

use crate::lexer::TokenKind;
use crate::source::ScannedFile;
use std::collections::BTreeSet;
use std::fmt;

/// Stable identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Order-dependent `HashMap`/`HashSet` iteration in a deterministic
    /// crate.
    D001,
    /// Wall-clock read in a deterministic crate.
    D002,
    /// Unseeded randomness.
    D003,
    /// Float arithmetic in a scheduler decision path.
    D004,
    /// Filesystem access outside the sanctioned persistence module in a
    /// deterministic crate.
    D005,
    /// Raw thread spawn outside the approved scoped-thread helpers.
    C001,
    /// Audit-feature debug hook missing from a public entry point.
    A001,
    /// Suppression without a reason (or malformed / unknown rule).
    S001,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 8] = [
        RuleId::D001,
        RuleId::D002,
        RuleId::D003,
        RuleId::D004,
        RuleId::D005,
        RuleId::C001,
        RuleId::A001,
        RuleId::S001,
    ];

    /// The rule's id string (`"D001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            RuleId::D001 => "D001",
            RuleId::D002 => "D002",
            RuleId::D003 => "D003",
            RuleId::D004 => "D004",
            RuleId::D005 => "D005",
            RuleId::C001 => "C001",
            RuleId::A001 => "A001",
            RuleId::S001 => "S001",
        }
    }

    /// Parse an id string; `None` for unknown ids.
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.as_str() == s)
    }

    /// One-line description used in reports and docs.
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::D001 => "order-dependent HashMap/HashSet iteration in a deterministic crate",
            RuleId::D002 => "wall-clock read in a deterministic crate",
            RuleId::D003 => "unseeded randomness",
            RuleId::D004 => "float arithmetic in a scheduler decision path",
            RuleId::D005 => "filesystem access outside the sanctioned persistence module",
            RuleId::C001 => "raw thread spawn outside the scoped-thread helpers",
            RuleId::A001 => "public entry point without the audit-feature debug hook",
            RuleId::S001 => "suppression without a written reason",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How a crate is classified for rule scoping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateClass {
    /// Output must be bit-identical across runs, worker counts, and
    /// replays: D001/D002/A001 apply.
    Deterministic,
    /// Observability / measurement code (muri-telemetry, muri-bench):
    /// owns the wall clock, exempt from D002.
    Observability,
    /// Harnesses and frontends (CLI, experiments, verify, facade):
    /// only the workspace-wide rules (D003, C001, S001) apply.
    Harness,
}

/// Everything the rules need to know about the file being scanned.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Cargo package name (`muri-core`, …).
    pub crate_name: String,
    /// Scoping class of that crate.
    pub class: CrateClass,
    /// Whether this file is on the scheduler decision path (D004 scope —
    /// the scaled-integer fixed-point convention is mandatory there).
    pub decision_path: bool,
}

/// One reported violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The rule that fired.
    pub rule: RuleId,
    /// Workspace-relative file path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of this occurrence.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {} {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Result of scanning one file.
#[derive(Debug, Default)]
pub struct FileResult {
    /// Violations that survived suppression, in source order.
    pub violations: Vec<Violation>,
    /// Count of violations silenced by reasoned suppressions.
    pub suppressed: usize,
}

/// Run every rule in `enabled` over `file`, then apply suppressions.
///
/// S001 findings are never suppressible: a suppression that needs a
/// suppression is a contradiction, and letting one comment both violate
/// and excuse would make the audit trail circular.
pub fn check_file(file: &ScannedFile, ctx: &FileContext, enabled: &[RuleId]) -> FileResult {
    let mut raw: Vec<Violation> = Vec::new();
    for &rule in enabled {
        match rule {
            RuleId::D001 => check_d001(file, ctx, &mut raw),
            RuleId::D002 => check_d002(file, ctx, &mut raw),
            RuleId::D003 => check_d003(file, ctx, &mut raw),
            RuleId::D004 => check_d004(file, ctx, &mut raw),
            RuleId::D005 => check_d005(file, ctx, &mut raw),
            RuleId::C001 => check_c001(file, ctx, &mut raw),
            RuleId::A001 => check_a001(file, ctx, &mut raw),
            RuleId::S001 => check_s001(file, &mut raw),
        }
    }
    let mut out = FileResult::default();
    for v in raw {
        let suppressible = v.rule != RuleId::S001;
        if suppressible
            && file
                .suppressions
                .iter()
                .any(|s| s.allows(v.rule.as_str(), v.line))
        {
            out.suppressed += 1;
        } else {
            out.violations.push(v);
        }
    }
    out.violations.sort_by_key(|a| (a.line, a.col, a.rule));
    out
}

fn push(out: &mut Vec<Violation>, file: &ScannedFile, ci: usize, rule: RuleId, message: String) {
    let t = file.code_token(ci);
    out.push(Violation {
        rule,
        path: file.rel_path.clone(),
        line: t.line,
        col: t.col,
        message,
    });
}

/// Method names whose call on a `HashMap`/`HashSet` observes (or mutates
/// through) the hasher-dependent bucket order.
const ORDER_DEPENDENT_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// D001 — order-dependent `HashMap`/`HashSet` iteration.
///
/// Pass 1 collects the names bound to hash collections in this file:
/// type ascriptions (`jobs: HashMap<…>` in fields, params, and `let`s)
/// and constructor bindings (`x = HashMap::new()` and friends). Pass 2
/// flags iteration over those names — `name.iter()`-style calls of any
/// method in [`ORDER_DEPENDENT_METHODS`], and `for … in [&][mut]
/// [self.]name {` loops (the `IntoIterator` form). Lookups (`get`,
/// `insert`, `contains_key`, `remove`, `len`) are order-independent and
/// stay legal, which is exactly why the rule targets iteration rather
/// than declaration: a hash map you never iterate is the right tool.
/// True when the receiver at `ci` is a bare binding or a `self.` field.
/// A field of some *other* value (`trace.jobs`) may share a name with a
/// hash-typed declaration while having a different type the name-based
/// pass cannot see, so those are left alone.
fn plain_receiver(file: &ScannedFile, ci: usize) -> bool {
    if ci == 0 || !file.code_is(ci - 1, TokenKind::Punct, ".") {
        return true;
    }
    ci >= 2
        && file.code_text(ci - 2) == "self"
        && !file.code_is(ci.wrapping_sub(3), TokenKind::Punct, ".")
}

fn check_d001(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Violation>) {
    if ctx.class != CrateClass::Deterministic {
        return;
    }
    let names = hash_bound_names(file);
    if names.is_empty() {
        return;
    }
    let n = file.code_len();
    for ci in 0..n {
        if file.is_test_line(file.code_token(ci).line) {
            continue;
        }
        let text = file.code_text(ci);
        // `name . method (` where method is order-dependent.
        if names.contains(text)
            && plain_receiver(file, ci)
            && file.code_is(ci + 1, TokenKind::Punct, ".")
            && file.code_is(ci + 3, TokenKind::Punct, "(")
        {
            if let Some(&mi) = file.code.get(ci + 2) {
                let method = file.tokens[mi].text(&file.src);
                if ORDER_DEPENDENT_METHODS.contains(&method) {
                    push(
                        out,
                        file,
                        ci,
                        RuleId::D001,
                        format!(
                            "order-dependent iteration `{text}.{method}()` over a \
                             HashMap/HashSet in deterministic crate {}: use BTreeMap/\
                             BTreeSet, sort before iterating, or suppress with a reason",
                            ctx.crate_name
                        ),
                    );
                }
            }
        }
        // `for pat in [&][mut] [self.]name {`
        if text == "for" {
            if let Some(target) = for_loop_target(file, ci) {
                if names.contains(file.code_text(target))
                    && file.code_is(target + 1, TokenKind::Punct, "{")
                {
                    let name = file.code_text(target);
                    push(
                        out,
                        file,
                        target,
                        RuleId::D001,
                        format!(
                            "order-dependent `for` iteration over HashMap/HashSet \
                             `{name}` in deterministic crate {}: use BTreeMap/BTreeSet, \
                             sort before iterating, or suppress with a reason",
                            ctx.crate_name
                        ),
                    );
                }
            }
        }
    }
}

/// Names bound to `HashMap`/`HashSet` in this file, from type ascriptions
/// and constructor calls.
fn hash_bound_names(file: &ScannedFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let n = file.code_len();
    for ci in 0..n {
        let t = file.code_token(ci);
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text(&file.src);
        if text != "HashMap" && text != "HashSet" {
            continue;
        }
        // Walk back over an optional `std :: collections ::` style path
        // prefix to the token before the path.
        let mut back = ci;
        while back >= 2
            && file.code_is(back - 1, TokenKind::Punct, "::")
            && file.code_token(back - 2).kind == TokenKind::Ident
        {
            back -= 2;
        }
        // Skip reference/mutability sigils and lifetimes between the
        // ascription colon and the type (`x: &'a mut HashMap<…>`).
        while back >= 1 {
            let prev = file.code_token(back - 1);
            let prev_text = prev.text(&file.src);
            if prev_text == "&" || prev_text == "mut" || prev.kind == TokenKind::Lifetime {
                back -= 1;
            } else {
                break;
            }
        }
        if back == 0 {
            continue;
        }
        let before = file.code_text(back - 1);
        // `name : [path::]HashMap` — field, param, or typed let.
        if before == ":" && back >= 2 {
            let name_tok = file.code_token(back - 2);
            if name_tok.kind == TokenKind::Ident {
                names.insert(name_tok.text(&file.src).to_string());
            }
        }
        // `name = [path::]HashMap :: ctor` — untyped let / assignment.
        if before == "=" && back >= 2 && file.code_is(ci + 1, TokenKind::Punct, "::") {
            let name_tok = file.code_token(back - 2);
            if name_tok.kind == TokenKind::Ident {
                names.insert(name_tok.text(&file.src).to_string());
            }
        }
    }
    names
}

/// For a `for` keyword at code index `ci`, return the code index of the
/// loop-target identifier when the loop has the shape
/// `for … in [&][mut] [self.]ident {`, i.e. iterates a named binding
/// directly. Method-call targets (`x.iter()`) are handled separately.
fn for_loop_target(file: &ScannedFile, ci: usize) -> Option<usize> {
    // Find the `in` keyword, skipping the (possibly destructuring)
    // pattern. Patterns can contain parens/tuples but never braces, and
    // `in` cannot appear inside them.
    let mut j = ci + 1;
    let limit = (ci + 24).min(file.code_len());
    while j < limit && file.code_text(j) != "in" {
        if matches!(file.code_text(j), "{" | ";") {
            return None;
        }
        j += 1;
    }
    if j >= limit {
        return None;
    }
    let mut k = j + 1;
    if file.code_is(k, TokenKind::Punct, "&") {
        k += 1;
    }
    if file.code.get(k).is_some() && file.code_text(k) == "mut" {
        k += 1;
    }
    if file.code.get(k).is_some()
        && file.code_text(k) == "self"
        && file.code_is(k + 1, TokenKind::Punct, ".")
    {
        k += 2;
    }
    let t = file.code.get(k).map(|&ti| &file.tokens[ti])?;
    if t.kind == TokenKind::Ident {
        Some(k)
    } else {
        None
    }
}

/// D002 — wall-clock reads in deterministic crates.
///
/// Flags the token sequences `Instant :: now` and `SystemTime :: now`.
/// Virtual time (`SimTime`/`SimDuration`) is the only clock deterministic
/// code may consult; real timing belongs in `muri-telemetry` (see its
/// `clock` module) or the bench harness, both of which are classified
/// [`CrateClass::Observability`]. The only other escape is the explicit
/// per-file sanction list [`crate::D002_SANCTIONED_CLOCK_FILES`], which
/// today names exactly the daemon's wall→scheduler time boundary.
fn check_d002(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Violation>) {
    if ctx.class != CrateClass::Deterministic {
        return;
    }
    if crate::D002_SANCTIONED_CLOCK_FILES
        .iter()
        .any(|&(path, _reason)| path == file.rel_path)
    {
        return;
    }
    for ci in 0..file.code_len() {
        let text = file.code_text(ci);
        if (text == "Instant" || text == "SystemTime")
            && file.code_is(ci + 1, TokenKind::Punct, "::")
            && file.code_is(ci + 2, TokenKind::Ident, "now")
            && !file.is_test_line(file.code_token(ci).line)
        {
            push(
                out,
                file,
                ci,
                RuleId::D002,
                format!(
                    "wall-clock read `{text}::now()` in deterministic crate {}: \
                     use virtual SimTime, or route timing through \
                     muri_telemetry::clock",
                    ctx.crate_name
                ),
            );
        }
    }
}

/// D003 — unseeded randomness, anywhere in the workspace.
///
/// Flags the identifiers `thread_rng` and `from_entropy`, and the path
/// `rand :: random`. Every stochastic input in this reproduction flows
/// from an explicit u64 seed so that runs replay; OS entropy would break
/// replays silently.
fn check_d003(file: &ScannedFile, _ctx: &FileContext, out: &mut Vec<Violation>) {
    for ci in 0..file.code_len() {
        let t = file.code_token(ci);
        if t.kind != TokenKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        let text = file.code_text(ci);
        let hit = match text {
            "thread_rng" | "from_entropy" => true,
            "rand" => {
                file.code_is(ci + 1, TokenKind::Punct, "::")
                    && file.code_is(ci + 2, TokenKind::Ident, "random")
            }
            _ => false,
        };
        if hit {
            let what = if text == "rand" { "rand::random" } else { text };
            push(
                out,
                file,
                ci,
                RuleId::D003,
                format!(
                    "unseeded randomness `{what}`: derive an rng from an explicit \
                     u64 seed (SmallRng::seed_from_u64) so runs replay"
                ),
            );
        }
    }
}

/// D004 — float arithmetic on the scheduler decision path.
///
/// In the files marked `decision_path`, any `f32`/`f64` type token or
/// float literal outside test code is flagged. Those paths compare and
/// rank in the scaled-integer fixed-point convention
/// (`muri_matching::WEIGHT_SCALE`): floats may exist at the boundary
/// (`weight_from_f64`) but not inside the comparisons, where rounding
/// drift would make plan output depend on code generation.
fn check_d004(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Violation>) {
    if !ctx.decision_path {
        return;
    }
    for ci in 0..file.code_len() {
        let t = file.code_token(ci);
        if file.is_test_line(t.line) {
            continue;
        }
        let text = file.code_text(ci);
        let hit = match t.kind {
            TokenKind::Ident => text == "f32" || text == "f64",
            TokenKind::FloatLit => true,
            _ => false,
        };
        if hit {
            push(
                out,
                file,
                ci,
                RuleId::D004,
                format!(
                    "float `{text}` on the scheduler decision path: decisions must \
                     use the scaled-integer fixed-point convention \
                     (weight_from_f64 / WEIGHT_SCALE), or carry a reasoned allow"
                ),
            );
        }
    }
}

/// D005 — filesystem writes/fsyncs in deterministic crates.
///
/// Flags `fs :: <fn>` paths, unqualified `File :: …` / `OpenOptions ::
/// …` constructor calls, and `.sync_all()` / `.sync_data()` method
/// calls. Deterministic code must not touch the filesystem on its own:
/// durable state flows through the daemon's single write-ahead journal
/// module, the one entry on the per-file sanction list
/// [`crate::D005_SANCTIONED_PERSISTENCE_FILES`]. Keeping every write
/// and fsync in one audited module is what makes the durability
/// discipline — group-committed fsync, atomic rename compaction,
/// fail-stop on sync error — checkable at all. A `File`/`OpenOptions`
/// segment already preceded by `::` is skipped so a fully qualified
/// `std::fs::File::create` reports once (at the `fs::` segment), not
/// twice.
fn check_d005(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Violation>) {
    if ctx.class != CrateClass::Deterministic {
        return;
    }
    if crate::D005_SANCTIONED_PERSISTENCE_FILES
        .iter()
        .any(|&(path, _reason)| path == file.rel_path)
    {
        return;
    }
    for ci in 0..file.code_len() {
        let t = file.code_token(ci);
        if t.kind != TokenKind::Ident || file.is_test_line(t.line) {
            continue;
        }
        let text = file.code_text(ci);
        let path_seg = |name: &str| {
            file.code_is(ci + 1, TokenKind::Punct, "::")
                .then(|| file.code.get(ci + 2))
                .flatten()
                .map(|&ni| format!("{name}::{}", file.tokens[ni].text(&file.src)))
        };
        let what = match text {
            "fs" => path_seg("fs"),
            "File" | "OpenOptions" if ci == 0 || !file.code_is(ci - 1, TokenKind::Punct, "::") => {
                path_seg(text)
            }
            "sync_all" | "sync_data"
                if ci > 0
                    && file.code_is(ci - 1, TokenKind::Punct, ".")
                    && file.code_is(ci + 1, TokenKind::Punct, "(") =>
            {
                Some(format!(".{text}()"))
            }
            _ => None,
        };
        if let Some(what) = what {
            push(
                out,
                file,
                ci,
                RuleId::D005,
                format!(
                    "filesystem access `{what}` in deterministic crate {}: durable \
                     state goes through the sanctioned journal module \
                     (crates/serve/src/journal.rs), or carry a reasoned allow",
                    ctx.crate_name
                ),
            );
        }
    }
}

/// C001 — raw thread spawns.
///
/// Flags `thread :: spawn` and `thread :: Builder`. Free-running threads
/// outlive the data they borrow only via `'static` bounds and make
/// shutdown order nondeterministic; the workspace convention is
/// `std::thread::scope` with joined scoped spawns (see
/// `DenseGraph::build_symmetric` and `muri_sim::replicate`), which C001
/// deliberately does not match (`s.spawn(…)` has no `thread ::` prefix).
fn check_c001(file: &ScannedFile, _ctx: &FileContext, out: &mut Vec<Violation>) {
    for ci in 0..file.code_len() {
        let t = file.code_token(ci);
        if t.kind != TokenKind::Ident || file.code_text(ci) != "thread" || file.is_test_line(t.line)
        {
            continue;
        }
        if !file.code_is(ci + 1, TokenKind::Punct, "::") {
            continue;
        }
        if let Some(&ni) = file.code.get(ci + 2) {
            let next = file.tokens[ni].text(&file.src);
            if next == "spawn" || next == "Builder" {
                push(
                    out,
                    file,
                    ci,
                    RuleId::C001,
                    format!(
                        "raw `thread::{next}`: use std::thread::scope with joined \
                         scoped spawns (the DenseGraph::build_symmetric pattern) so \
                         threads cannot outlive their inputs"
                    ),
                );
            }
        }
    }
}

/// A001 — audit hooks on public entry points.
///
/// In deterministic crates, every `pub fn` whose name starts with
/// `plan_` or `simulate` must make its audit story visible in its body:
/// either the `feature = "audit"` hook itself, or a delegation the
/// auditor can follow — a call to another covered function, or to the
/// engine loop (`.run()` / `.drive()`), which carries the hooks. A
/// function that is itself `#[cfg(feature = "audit")]`-gated is exempt
/// (it exists only inside the audit build).
fn check_a001(file: &ScannedFile, ctx: &FileContext, out: &mut Vec<Violation>) {
    if ctx.class != CrateClass::Deterministic {
        return;
    }
    let n = file.code_len();
    for ci in 0..n {
        if file.code_text(ci) != "pub" || !file.code_is(ci + 1, TokenKind::Ident, "fn") {
            continue;
        }
        let Some(&name_ti) = file.code.get(ci + 2) else {
            continue;
        };
        let name = file.tokens[name_ti].text(&file.src).to_string();
        if !(name.starts_with("plan_") || name.starts_with("simulate")) {
            continue;
        }
        if file.is_test_line(file.code_token(ci).line) {
            continue;
        }
        if preceded_by_audit_cfg(file, ci) {
            continue;
        }
        let Some((body_start, body_end)) = fn_body_span(file, ci + 2) else {
            continue;
        };
        if body_has_audit_evidence(file, body_start, body_end, &name) {
            continue;
        }
        push(
            out,
            file,
            ci + 2,
            RuleId::A001,
            format!(
                "public entry point `{name}` has no audit-feature debug hook: add a \
                 `#[cfg(feature = \"audit\")]` muri-verify hook (or delegate to an \
                 audited entry point) so `muri verify` can check its output"
            ),
        );
    }
}

/// Whether the tokens shortly before `pub` at `ci` contain an attribute
/// with `feature = "audit"`.
fn preceded_by_audit_cfg(file: &ScannedFile, ci: usize) -> bool {
    let lo = ci.saturating_sub(24);
    (lo..ci).any(|j| {
        file.code_is(j, TokenKind::Ident, "feature")
            && file.code_is(j + 1, TokenKind::Punct, "=")
            && file
                .code
                .get(j + 2)
                .is_some_and(|&ti| file.tokens[ti].text(&file.src).contains("audit"))
    })
}

/// Given the code index of a fn name, return the code-index span
/// `(open, close)` of its body braces.
fn fn_body_span(file: &ScannedFile, name_ci: usize) -> Option<(usize, usize)> {
    let n = file.code_len();
    let mut i = name_ci;
    // Scan to the first `{` at angle/paren depth 0; a `;` first means a
    // body-less declaration (trait method) — not our concern.
    let mut paren = 0i32;
    while i < n {
        match file.code_text(i) {
            "(" | "[" => paren += 1,
            ")" | "]" => paren -= 1,
            "{" if paren == 0 => break,
            ";" if paren == 0 => return None,
            _ => {}
        }
        i += 1;
    }
    if i >= n {
        return None;
    }
    let open = i;
    let mut depth = 0i32;
    while i < n {
        match file.code_text(i) {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, i));
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((open, n - 1))
}

/// Audit evidence inside a body span: the feature hook, a call to a
/// covered sibling, or a call into the engine loop.
fn body_has_audit_evidence(
    file: &ScannedFile,
    body_start: usize,
    body_end: usize,
    own_name: &str,
) -> bool {
    for j in body_start..body_end {
        let t = file.code_token(j);
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = file.code_text(j);
        if text == "feature"
            && file.code_is(j + 1, TokenKind::Punct, "=")
            && file
                .code
                .get(j + 2)
                .is_some_and(|&ti| file.tokens[ti].text(&file.src).contains("audit"))
        {
            return true;
        }
        let is_call = file.code_is(j + 1, TokenKind::Punct, "(");
        if !is_call {
            continue;
        }
        if (text.starts_with("plan_") || text.starts_with("simulate")) && text != own_name {
            return true;
        }
        if (text == "run" || text == "drive") && j > 0 && file.code_is(j - 1, TokenKind::Punct, ".")
        {
            return true;
        }
    }
    false
}

/// S001 — suppression hygiene.
///
/// Every `muri-lint:` comment must parse as `allow(RULES, reason = "…")`,
/// name only known rule ids, and carry a non-empty reason. An allow
/// without a reason is an audit hole: six months later nobody can tell a
/// considered exemption from a silenced bug.
fn check_s001(file: &ScannedFile, out: &mut Vec<Violation>) {
    for s in &file.suppressions {
        let mut problems: Vec<String> = Vec::new();
        if s.malformed {
            problems.push(
                "malformed suppression: expected `muri-lint: allow(RULE, reason = \"…\")`"
                    .to_string(),
            );
        } else {
            for r in &s.rules {
                if RuleId::parse(r).is_none() {
                    problems.push(format!("unknown rule id `{r}` in suppression"));
                }
            }
            if s.reason.as_deref().is_none_or(|r| r.trim().is_empty()) {
                problems.push(format!(
                    "suppression of {} has no reason: write \
                     `reason = \"…\"` explaining why the exemption is sound",
                    s.rules.join(", ")
                ));
            }
        }
        for message in problems {
            out.push(Violation {
                rule: RuleId::S001,
                path: file.rel_path.clone(),
                line: s.line,
                col: 1,
                message,
            });
        }
    }
}
