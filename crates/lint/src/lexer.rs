//! A hand-rolled Rust lexer, just rich enough for lint-rule matching.
//!
//! The workspace policy vendors every dependency, so pulling in `syn` for
//! a CI lint pass is off the table — and full parsing is overkill anyway:
//! every `muri-lint` rule is expressible over a token stream that gets
//! comments, string/char literals, lifetimes, numbers, identifiers, and
//! the `::` path separator right. The lexer is lossless about *position*
//! (every token carries its 1-based line and column) and deliberately
//! lossy about anything a rule never looks at (it does not distinguish
//! keywords from identifiers, nor `+=` from `+` `=`).
//!
//! Correctness notes for the constructs that commonly break naive
//! scanners:
//!
//! * nested block comments (`/* /* */ */`) are tracked with a depth
//!   counter, as rustc does;
//! * raw strings (`r"…"`, `r#"…"#`, any hash count) and byte strings
//!   (`b"…"`, `br#"…"#`) are consumed without interpreting escapes;
//! * `'a` lifetimes are distinguished from `'a'` char literals by a
//!   one-character lookahead past the quoted char;
//! * float literals (`1.5`, `1e6`, `2.5e-3`, `1f64`) are classified
//!   separately from integers so rule D004 can flag them, while `0..n`
//!   ranges and `x.0` tuple accesses stay integers.

/// The lexical class of a [`Token`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// Integer literal, including any suffix (`42`, `0xff_u32`).
    IntLit,
    /// Float literal, including any suffix (`1.5`, `1e6`, `2f64`).
    FloatLit,
    /// String, raw-string, byte-string, byte, or char literal.
    StrLit,
    /// `// …` comment (doc comments included).
    LineComment,
    /// `/* … */` comment (doc comments included), possibly nested.
    BlockComment,
    /// `'a`-style lifetime (or loop label).
    Lifetime,
    /// Any other single character of punctuation — except `::`, which is
    /// kept as one two-character token so path matching is a simple
    /// token-sequence comparison.
    Punct,
}

/// One lexed token: a kind plus its byte range and 1-based position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first character in the source.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

struct Cursor<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// Advance one *character* (multi-byte UTF-8 sequences count as one
    /// column), maintaining the line/column counters.
    fn bump(&mut self) {
        let Some(&b) = self.bytes.get(self.pos) else {
            return;
        };
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
            self.pos += 1;
            return;
        }
        // Skip continuation bytes of a multi-byte character in one bump.
        let mut next = self.pos + 1;
        if b >= 0x80 {
            while next < self.bytes.len() && (self.bytes[next] & 0xC0) == 0x80 {
                next += 1;
            }
        }
        self.pos = next;
        self.col += 1;
    }

    fn bump_while(&mut self, pred: impl Fn(u8) -> bool) {
        while let Some(b) = self.peek() {
            if pred(b) {
                self.bump();
            } else {
                break;
            }
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token vector. Never fails: unterminated literals and
/// comments are closed at end of input, and unknown bytes become
/// [`TokenKind::Punct`]. The linter scans files that already compile, so
/// leniency only ever matters for fixtures.
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        let (start, line, col) = (c.pos, c.line, c.col);
        let kind = lex_one(&mut c, b);
        out.push(Token {
            kind,
            start,
            end: c.pos,
            line,
            col,
        });
    }
    out
}

fn lex_one(c: &mut Cursor<'_>, b: u8) -> TokenKind {
    match b {
        b'/' if c.peek_at(1) == Some(b'/') => {
            c.bump_while(|x| x != b'\n');
            TokenKind::LineComment
        }
        b'/' if c.peek_at(1) == Some(b'*') => {
            c.bump(); // `/`
            c.bump(); // `*`
            let mut depth = 1u32;
            while depth > 0 {
                match (c.peek(), c.peek_at(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        depth += 1;
                        c.bump();
                        c.bump();
                    }
                    (Some(b'*'), Some(b'/')) => {
                        depth -= 1;
                        c.bump();
                        c.bump();
                    }
                    (Some(_), _) => c.bump(),
                    (None, _) => break,
                }
            }
            TokenKind::BlockComment
        }
        b'r' | b'b' => lex_prefixed(c),
        b'\'' => lex_quote(c),
        b'"' => {
            lex_string(c);
            TokenKind::StrLit
        }
        b'0'..=b'9' => lex_number(c),
        b':' if c.peek_at(1) == Some(b':') => {
            c.bump();
            c.bump();
            TokenKind::Punct
        }
        _ if is_ident_start(b) => {
            c.bump_while(is_ident_continue);
            TokenKind::Ident
        }
        _ => {
            c.bump();
            TokenKind::Punct
        }
    }
}

/// Tokens starting with `r` or `b`: raw strings, byte strings, byte
/// chars, raw identifiers — or a plain identifier that merely begins with
/// one of those letters.
fn lex_prefixed(c: &mut Cursor<'_>) -> TokenKind {
    let first = c.peek();
    let second = c.peek_at(1);
    let third = c.peek_at(2);
    match (first, second, third) {
        // r"…" | r#"…"#
        (Some(b'r'), Some(b'"'), _) | (Some(b'r'), Some(b'#'), _) => {
            // `r#ident` (raw identifier) vs `r#"…"#` (raw string).
            if second == Some(b'#') && third.is_some_and(is_ident_start) {
                c.bump(); // r
                c.bump(); // #
                c.bump_while(is_ident_continue);
                return TokenKind::Ident;
            }
            c.bump(); // r
            lex_raw_string(c);
            TokenKind::StrLit
        }
        // b"…" | b'…' | br"…" | br#"…"#
        (Some(b'b'), Some(b'"'), _) => {
            c.bump(); // b
            lex_string(c);
            TokenKind::StrLit
        }
        (Some(b'b'), Some(b'\''), _) => {
            c.bump(); // b
            c.bump(); // '
            lex_char_body(c);
            TokenKind::StrLit
        }
        (Some(b'b'), Some(b'r'), Some(b'"')) | (Some(b'b'), Some(b'r'), Some(b'#')) => {
            c.bump(); // b
            c.bump(); // r
            lex_raw_string(c);
            TokenKind::StrLit
        }
        _ => {
            c.bump_while(is_ident_continue);
            TokenKind::Ident
        }
    }
}

/// After an opening `'`: decide between a lifetime and a char literal.
fn lex_quote(c: &mut Cursor<'_>) -> TokenKind {
    c.bump(); // '
    match c.peek() {
        Some(b'\\') => {
            lex_char_body(c);
            TokenKind::StrLit
        }
        Some(b) if is_ident_start(b) => {
            // `'a'` is a char literal; `'a` (no closing quote after one
            // identifier-ish char) is a lifetime or label. Look one
            // character past the first to decide.
            let mut probe = 1;
            if b >= 0x80 {
                while c.peek_at(probe).is_some_and(|x| (x & 0xC0) == 0x80) {
                    probe += 1;
                }
            }
            if c.peek_at(probe) == Some(b'\'') {
                lex_char_body(c);
                TokenKind::StrLit
            } else {
                c.bump_while(is_ident_continue);
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            lex_char_body(c);
            TokenKind::StrLit
        }
        None => TokenKind::Punct,
    }
}

/// Consume the body and closing quote of a char literal (cursor sits on
/// the first content character, or on `\` of an escape).
fn lex_char_body(c: &mut Cursor<'_>) {
    if c.peek() == Some(b'\\') {
        c.bump();
        c.bump(); // the escaped character (enough for \n \' \\ \0 \x.. \u{..})
        c.bump_while(|x| x != b'\'' && x != b'\n');
    } else {
        c.bump();
    }
    if c.peek() == Some(b'\'') {
        c.bump();
    }
}

/// Consume a `"…"` string with escapes (cursor sits on the opening `"`).
fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening "
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                return;
            }
            _ => c.bump(),
        }
    }
}

/// Consume a raw string; cursor sits on `#` or `"` after the `r`.
fn lex_raw_string(c: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    if c.peek() != Some(b'"') {
        return; // not actually a raw string; treat consumed prefix as done
    }
    c.bump(); // opening "
    while let Some(b) = c.peek() {
        c.bump();
        if b == b'"' {
            let mut seen = 0usize;
            while seen < hashes && c.peek() == Some(b'#') {
                seen += 1;
                c.bump();
            }
            if seen == hashes {
                return;
            }
        }
    }
}

/// Consume a number; cursor sits on the first digit.
fn lex_number(c: &mut Cursor<'_>) -> TokenKind {
    let mut float = false;
    if c.peek() == Some(b'0')
        && matches!(c.peek_at(1), Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B'))
    {
        c.bump();
        c.bump();
        c.bump_while(|x| x.is_ascii_alphanumeric() || x == b'_');
        return TokenKind::IntLit;
    }
    c.bump_while(|x| x.is_ascii_digit() || x == b'_');
    // Fractional part: a `.` followed by a digit (so `0..n` and `x.f()`
    // stay out), or a trailing `.` not followed by an identifier or `.`.
    if c.peek() == Some(b'.') {
        match c.peek_at(1) {
            Some(d) if d.is_ascii_digit() => {
                float = true;
                c.bump();
                c.bump_while(|x| x.is_ascii_digit() || x == b'_');
            }
            Some(d) if is_ident_start(d) || d == b'.' => {}
            _ => {
                float = true;
                c.bump();
            }
        }
    }
    // Exponent.
    if matches!(c.peek(), Some(b'e' | b'E')) {
        let (sign, digit) = (c.peek_at(1), c.peek_at(2));
        let has_exp = match sign {
            Some(b'+' | b'-') => digit.is_some_and(|d| d.is_ascii_digit()),
            Some(d) => d.is_ascii_digit(),
            None => false,
        };
        if has_exp {
            float = true;
            c.bump(); // e
            if matches!(c.peek(), Some(b'+' | b'-')) {
                c.bump();
            }
            c.bump_while(|x| x.is_ascii_digit() || x == b'_');
        }
    }
    // Type suffix (`u32`, `f64`, …) — a float suffix forces float.
    if c.peek().is_some_and(is_ident_start) {
        let suffix_start = c.pos;
        c.bump_while(is_ident_continue);
        let suffix = &c.src[suffix_start..c.pos];
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
    }
    if float {
        TokenKind::FloatLit
    } else {
        TokenKind::IntLit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_puncts_and_paths() {
        let ks = kinds("std::thread::spawn(x);");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            ["std", "::", "thread", "::", "spawn", "(", "x", ")", ";"]
        );
        assert_eq!(ks[1].0, TokenKind::Punct);
        assert_eq!(ks[0].0, TokenKind::Ident);
    }

    #[test]
    fn comments_nested_and_line() {
        let ks = kinds("a /* b /* c */ d */ e // tail\nf");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(texts[0], "a");
        assert_eq!(ks[1].0, TokenKind::BlockComment);
        assert_eq!(texts[2], "e");
        assert_eq!(ks[3].0, TokenKind::LineComment);
        assert_eq!(texts[4], "f");
    }

    #[test]
    fn strings_raw_and_byte() {
        let ks = kinds(r####"let s = r#"has "quotes" and \"#; let b = b"x\"y"; let c = 'q';"####);
        let strs: Vec<&(TokenKind, String)> =
            ks.iter().filter(|(k, _)| *k == TokenKind::StrLit).collect();
        assert_eq!(strs.len(), 3, "{ks:?}");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let ks = kinds("fn f<'a>(x: &'a str) { let c = 'z'; let n = '\\n'; }");
        let lifetimes: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = ks.iter().filter(|(k, _)| *k == TokenKind::StrLit).collect();
        assert_eq!(lifetimes.len(), 2, "{ks:?}");
        assert_eq!(chars.len(), 2, "{ks:?}");
    }

    #[test]
    fn numbers_int_vs_float() {
        let ks = kinds("1 1.5 1e6 2.5e-3 1f64 7u32 0xff 0..n x.0 1_000");
        let floats: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::FloatLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, ["1.5", "1e6", "2.5e-3", "1f64"]);
        let ints: Vec<&str> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::IntLit)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, ["1", "7u32", "0xff", "0", "0", "1_000"]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[1].text("a\n  bb"), "bb");
    }
}
