//! Per-file source model: the token stream plus everything the rules
//! share — which lines are test code, and which lines carry
//! `// muri-lint: allow(...)` suppressions.

use crate::lexer::{lex, Token, TokenKind};

/// One parsed suppression comment.
///
/// Syntax: `// muri-lint: allow(D001, reason = "why this is safe")`.
/// Multiple rule ids may be listed before the `reason`. A suppression on
/// its own line covers the next line that has code; a trailing
/// suppression covers its own line. A suppression without a non-empty
/// reason still *parses* — rule S001 then reports it, and it suppresses
/// nothing.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule ids as written (e.g. `"D001"`), in order.
    pub rules: Vec<String>,
    /// The quoted reason, if one was given.
    pub reason: Option<String>,
    /// 1-based line of the comment itself.
    pub line: u32,
    /// 1-based line the suppression applies to.
    pub covers: u32,
    /// Set when the comment contained `muri-lint:` but could not be
    /// parsed as `allow(...)` — reported by S001 as malformed.
    pub malformed: bool,
}

impl Suppression {
    /// Whether this suppression is effective for `rule` on `line`.
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        !self.malformed
            && self.covers == line
            && self.reason.as_deref().is_some_and(|r| !r.trim().is_empty())
            && self.rules.iter().any(|r| r == rule)
    }
}

/// A lexed source file with the derived facts every rule consumes.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Full source text.
    pub src: String,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of non-comment tokens, in order.
    pub code: Vec<usize>,
    /// Inclusive 1-based line ranges of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
    /// Parsed suppression comments.
    pub suppressions: Vec<Suppression>,
}

impl ScannedFile {
    /// Lex and analyze one file.
    pub fn new(rel_path: &str, src: &str) -> Self {
        let tokens = lex(src);
        let code: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|(i, _)| i)
            .collect();
        let test_ranges = find_test_ranges(&tokens, &code, src);
        let suppressions = find_suppressions(&tokens, &code, src);
        ScannedFile {
            rel_path: rel_path.to_string(),
            src: src.to_string(),
            tokens,
            code,
            test_ranges,
            suppressions,
        }
    }

    /// Whether 1-based `line` falls inside test-gated code.
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// The text of code token `ci` (an index into [`Self::code`]).
    pub fn code_text(&self, ci: usize) -> &str {
        self.tokens[self.code[ci]].text(&self.src)
    }

    /// The token behind code index `ci`.
    pub fn code_token(&self, ci: usize) -> &Token {
        &self.tokens[self.code[ci]]
    }

    /// Number of code tokens.
    pub fn code_len(&self) -> usize {
        self.code.len()
    }

    /// True if code token `ci` exists, is of `kind`, and its text is
    /// `text`.
    pub fn code_is(&self, ci: usize, kind: TokenKind, text: &str) -> bool {
        self.code.get(ci).is_some_and(|&ti| {
            self.tokens[ti].kind == kind && self.tokens[ti].text(&self.src) == text
        })
    }
}

/// Locate `#[cfg(test)]` and `#[test]` items and return the line ranges
/// their bodies span.
///
/// The walk is purely lexical: on an attribute opener (`#` `[`), the
/// attribute's tokens are collected to the matching `]`; if they spell
/// `cfg ( test )` or are exactly `test`, the following item is located by
/// scanning past any further attributes to the first `{` (its matching
/// `}` closes the range) or to a `;` for body-less items. That covers
/// `mod tests { … }`, `#[test] fn case() { … }`, and test-only `use`
/// lines — the forms that occur in this workspace.
fn find_test_ranges(tokens: &[Token], code: &[usize], src: &str) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !(token_is(tokens, code, src, i, "#") && token_is(tokens, code, src, i + 1, "[")) {
            i += 1;
            continue;
        }
        let attr_start_line = tokens[code[i]].line;
        let Some((attr_tokens, after_attr)) = attribute_contents(tokens, code, src, i) else {
            i += 1;
            continue;
        };
        let is_test_attr = attr_tokens == ["test"]
            || attr_tokens
                .windows(4)
                .any(|w| w == ["cfg", "(", "test", ")"]);
        if !is_test_attr {
            i = after_attr;
            continue;
        }
        // Skip any further attributes between this one and the item.
        let mut j = after_attr;
        while token_is(tokens, code, src, j, "#") && token_is(tokens, code, src, j + 1, "[") {
            match attribute_contents(tokens, code, src, j) {
                Some((_, nj)) => j = nj,
                None => break,
            }
        }
        // Find the item's extent: first `{` at depth 0 (then match it),
        // or a `;` (body-less item).
        let mut depth = 0i32;
        let mut end_line = attr_start_line;
        let mut k = j;
        while k < code.len() {
            let t = &tokens[code[k]];
            match t.text(src) {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth <= 0 {
                        end_line = t.line;
                        k += 1;
                        break;
                    }
                }
                ";" if depth == 0 => {
                    end_line = t.line;
                    k += 1;
                    break;
                }
                _ => {}
            }
            end_line = t.line;
            k += 1;
        }
        ranges.push((attr_start_line, end_line));
        i = k;
    }
    ranges
}

fn token_is(tokens: &[Token], code: &[usize], src: &str, ci: usize, text: &str) -> bool {
    code.get(ci).is_some_and(|&ti| tokens[ti].text(src) == text)
}

/// Given `ci` pointing at `#`, return the attribute's token texts and the
/// code index just past the closing `]`.
fn attribute_contents<'a>(
    tokens: &[Token],
    code: &[usize],
    src: &'a str,
    ci: usize,
) -> Option<(Vec<&'a str>, usize)> {
    if !token_is(tokens, code, src, ci, "#") || !token_is(tokens, code, src, ci + 1, "[") {
        return None;
    }
    let mut depth = 0i32;
    let mut texts = Vec::new();
    let mut k = ci + 1;
    while k < code.len() {
        let t = tokens[code[k]].text(src);
        match t {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return Some((texts, k + 1));
                }
            }
            _ => texts.push(t),
        }
        k += 1;
    }
    None
}

/// Parse every comment for `muri-lint:` suppression markers.
fn find_suppressions(tokens: &[Token], code: &[usize], src: &str) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (ti, t) in tokens.iter().enumerate() {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(src);
        // Doc comments document; only plain comments suppress. This lets
        // rustdoc (and this crate's own sources) spell out the
        // suppression grammar without tripping S001.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        let Some(marker) = text.find("muri-lint:") else {
            continue;
        };
        let rest = &text[marker + "muri-lint:".len()..];
        // Does any code token precede this comment on the same line?
        // Trailing comments cover their own line; standalone ones cover
        // the next line that has code.
        let standalone = !code
            .iter()
            .take_while(|&&ci| ci < ti)
            .any(|&ci| tokens[ci].line == t.line);
        let covers = if standalone {
            code.iter()
                .find(|&&ci| ci > ti && tokens[ci].line > t.line)
                .map_or(t.line + 1, |&ci| tokens[ci].line)
        } else {
            t.line
        };
        match parse_allow(rest) {
            Some((rules, reason)) => out.push(Suppression {
                rules,
                reason,
                line: t.line,
                covers,
                malformed: false,
            }),
            None => out.push(Suppression {
                rules: Vec::new(),
                reason: None,
                line: t.line,
                covers,
                malformed: true,
            }),
        }
    }
    out
}

/// Parse `allow(RULE[, RULE…][, reason = "…"])` from the text after the
/// `muri-lint:` marker. Returns the rule list and the reason, or `None`
/// if the text does not fit the grammar. The reason may freely contain
/// commas and parentheses — it is delimited by its quotes, not by the
/// argument syntax around it.
fn parse_allow(rest: &str) -> Option<(Vec<String>, Option<String>)> {
    let rest = rest.trim_start();
    let mut s = rest.strip_prefix("allow")?.trim_start();
    s = s.strip_prefix('(')?;
    let mut rules = Vec::new();
    let mut reason = None;
    loop {
        s = s.trim_start();
        if let Some(tail) = s.strip_prefix(')') {
            let _ = tail;
            break;
        }
        if let Some(tail) = s.strip_prefix(',') {
            s = tail;
            continue;
        }
        // `reason = "…"` — the quoted string may contain anything but
        // an unescaped quote.
        if let Some(tail) = s.strip_prefix("reason") {
            let tail = tail.trim_start().strip_prefix('=')?.trim_start();
            let mut chars = tail.char_indices();
            let (_, quote) = chars.next()?;
            if quote != '"' {
                return None;
            }
            let mut text = String::new();
            let mut escaped = false;
            let mut end = None;
            for (i, c) in chars {
                if escaped {
                    text.push(c);
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    end = Some(i + c.len_utf8());
                    break;
                } else {
                    text.push(c);
                }
            }
            let end = end?;
            reason = Some(text);
            s = &tail[end..];
            continue;
        }
        // A rule id: a run of alphanumerics/underscores.
        let id_len = s
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(s.len());
        if id_len == 0 {
            return None; // unexpected character
        }
        rules.push(s[..id_len].to_string());
        s = &s[id_len..];
    }
    if rules.is_empty() {
        return None;
    }
    Some((rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mod_lines_are_marked() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\nfn after() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn test_fn_attr_is_marked() {
        let src = "fn real() {}\n#[test]\nfn case() {\n    body();\n}\nfn after() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_test_use_line_is_marked() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn real() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.is_test_line(2));
        assert!(!f.is_test_line(3));
    }

    #[test]
    fn suppression_trailing_covers_own_line() {
        let src = "let x = 1; // muri-lint: allow(D001, reason = \"lookup only\")\n";
        let f = ScannedFile::new("x.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!(s.covers, 1);
        assert!(s.allows("D001", 1));
        assert!(!s.allows("D002", 1));
    }

    #[test]
    fn suppression_standalone_covers_next_code_line() {
        let src =
            "// muri-lint: allow(D002, D004, reason = \"telemetry only\")\n\nlet t = now();\n";
        let f = ScannedFile::new("x.rs", src);
        let s = &f.suppressions[0];
        assert_eq!(s.covers, 3);
        assert!(s.allows("D004", 3));
    }

    #[test]
    fn bare_allow_parses_but_allows_nothing() {
        let src = "// muri-lint: allow(D001)\nlet x = 1;\n";
        let f = ScannedFile::new("x.rs", src);
        let s = &f.suppressions[0];
        assert!(!s.malformed);
        assert!(s.reason.is_none());
        assert!(!s.allows("D001", 2));
    }

    #[test]
    fn garbage_marker_is_malformed() {
        let src = "// muri-lint: disable everything\nlet x = 1;\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.suppressions[0].malformed);
    }

    #[test]
    fn doc_comments_are_not_suppressions() {
        let src = "//! Module docs: `// muri-lint: allow(D001)` is the grammar.\n\
/// Item docs may also mention muri-lint: allow(D002) freely.\n\
/** Block docs too: muri-lint: allow(D003). */\n\
fn real() {}\n";
        let f = ScannedFile::new("x.rs", src);
        assert!(f.suppressions.is_empty(), "{:?}", f.suppressions);
    }
}
