//! Report rendering: the human format CI prints and a JSON form for
//! tooling. The JSON writer is hand-rolled (string escaping only — the
//! schema is flat), keeping the analyzer itself dependency-free so it can
//! never be broken by the crates it lints.

use crate::rules::{RuleId, Violation};
use std::fmt::Write as _;

/// The outcome of a workspace scan.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations that survived suppression, ordered by path, then line.
    pub violations: Vec<Violation>,
    /// Number of files scanned.
    pub files_scanned: usize,
    /// Number of crates scanned.
    pub crates_scanned: usize,
    /// Violations silenced by reasoned suppressions.
    pub suppressed: usize,
}

impl LintReport {
    /// True when no violations survived.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Per-rule counts over the surviving violations, in rule order.
    pub fn rule_counts(&self) -> Vec<(RuleId, usize)> {
        RuleId::ALL
            .into_iter()
            .map(|r| (r, self.violations.iter().filter(|v| v.rule == r).count()))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// The human-readable report: one `path:line:col: RULE message` line
    /// per violation, then a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "{v}");
        }
        if self.is_clean() {
            let _ = writeln!(
                out,
                "muri-lint: clean — {} files across {} crates, {} reasoned suppression(s)",
                self.files_scanned, self.crates_scanned, self.suppressed
            );
        } else {
            let summary: Vec<String> = self
                .rule_counts()
                .into_iter()
                .map(|(r, n)| format!("{n}x {r}"))
                .collect();
            let _ = writeln!(
                out,
                "muri-lint: {} violation(s) [{}] in {} files across {} crates \
                 ({} suppressed)",
                self.violations.len(),
                summary.join(", "),
                self.files_scanned,
                self.crates_scanned,
                self.suppressed
            );
        }
        out
    }

    /// The machine-readable report (one JSON object, stable key order).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \
                 \"message\": {}}}",
                json_str(v.rule.as_str()),
                json_str(&v.path),
                v.line,
                v.col,
                json_str(&v.message)
            );
        }
        if !self.violations.is_empty() {
            out.push_str("\n  ");
        }
        let _ = write!(
            out,
            "],\n  \"files_scanned\": {},\n  \"crates_scanned\": {},\n  \
             \"suppressed\": {},\n  \"clean\": {}\n}}\n",
            self.files_scanned,
            self.crates_scanned,
            self.suppressed,
            self.is_clean()
        );
        out
    }
}

/// Escape `s` as a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violation() -> Violation {
        Violation {
            rule: RuleId::D001,
            path: "crates/x/src/lib.rs".to_string(),
            line: 3,
            col: 7,
            message: "iteration over \"map\"".to_string(),
        }
    }

    #[test]
    fn human_report_lists_and_summarizes() {
        let r = LintReport {
            violations: vec![violation()],
            files_scanned: 2,
            crates_scanned: 1,
            suppressed: 1,
        };
        let text = r.render_human();
        assert!(text.contains("crates/x/src/lib.rs:3:7: D001"));
        assert!(text.contains("1 violation(s) [1x D001]"));
    }

    #[test]
    fn json_is_parseable_and_escaped() {
        let r = LintReport {
            violations: vec![violation()],
            files_scanned: 2,
            crates_scanned: 1,
            suppressed: 0,
        };
        let json = r.render_json();
        assert!(json.contains(r#""rule": "D001""#));
        assert!(json.contains(r#"\"map\""#), "{json}");
        assert!(json.contains("\"clean\": false"));
        // Keep the writer honest against a real parser in dev builds.
        let parsed: serde_json::Value =
            serde_json::from_str(&json).expect("report JSON must parse");
        let violations = match parsed.get("violations") {
            Some(serde_json::Value::Array(items)) => items,
            other => panic!("violations must be an array, got {other:?}"),
        };
        assert_eq!(violations[0].get("line"), Some(&serde_json::Value::UInt(3)));
        assert_eq!(
            parsed.get("files_scanned"),
            Some(&serde_json::Value::UInt(2))
        );
    }

    #[test]
    fn clean_report() {
        let r = LintReport {
            files_scanned: 5,
            crates_scanned: 2,
            ..Default::default()
        };
        assert!(r.is_clean());
        assert!(r.render_human().contains("clean"));
        let parsed: serde_json::Value = serde_json::from_str(&r.render_json()).unwrap();
        assert_eq!(parsed.get("clean"), Some(&serde_json::Value::Bool(true)));
    }
}
