//! End-to-end audit: full simulations must produce zero violations.
//! Compiled only with `--features audit`.

#![cfg(feature = "audit")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use muri_core::{PolicyKind, SchedulerConfig};
use muri_sim::{simulate_audited, SimConfig};
use muri_workload::philly_like_trace;

#[test]
fn audited_simulations_are_violation_free() {
    let trace = philly_like_trace(3, 0.02);
    for policy in [
        PolicyKind::MuriL,
        PolicyKind::MuriS,
        PolicyKind::Srtf,
        PolicyKind::Srsf,
        PolicyKind::AntMan,
    ] {
        let cfg = SimConfig::testbed(SchedulerConfig::preset(policy));
        let (report, audit) = simulate_audited(&trace, &cfg);
        assert!(report.all_finished(), "{policy:?}: unfinished jobs");
        assert!(audit.checks > 0, "{policy:?}: auditor never ran");
        assert!(audit.is_clean(), "{policy:?}:\n{audit}");
    }
}
