//! End-to-end audit: full simulations must produce zero violations.
//! Compiled only with `--features audit`.

#![cfg(feature = "audit")]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use muri_core::{PolicyKind, SchedulerConfig};
use muri_sim::{simulate_audited, CheckpointConfig, FaultConfig, SimConfig};
use muri_workload::{philly_like_trace, SimDuration};

#[test]
fn audited_simulations_are_violation_free() {
    let trace = philly_like_trace(3, 0.02);
    for policy in [
        PolicyKind::MuriL,
        PolicyKind::MuriS,
        PolicyKind::Srtf,
        PolicyKind::Srsf,
        PolicyKind::AntMan,
    ] {
        let cfg = SimConfig::testbed(SchedulerConfig::preset(policy));
        let (report, audit) = simulate_audited(&trace, &cfg);
        assert!(report.all_finished(), "{policy:?}: unfinished jobs");
        assert!(audit.checks > 0, "{policy:?}: auditor never ran");
        assert!(audit.is_clean(), "{policy:?}:\n{audit}");
    }
}

/// The recovery ledger must stay clean under the full fault battery:
/// machine fail-stop/transient faults, per-job faults, degraded-machine
/// blacklisting, and checkpoint/restore — no job lost or duplicated, no
/// placement on a dead or blacklisted machine, attained service and
/// durable progress monotone.
#[test]
fn faulty_audited_simulations_are_violation_free() {
    let trace = philly_like_trace(2, 0.02);
    for policy in [PolicyKind::MuriL, PolicyKind::Srsf] {
        let mut cfg = SimConfig::testbed(SchedulerConfig::preset(policy));
        cfg.faults = FaultConfig {
            mtbf: Some(SimDuration::from_secs(1800)),
            machine_mtbf: Some(SimDuration::from_secs(3600)),
            machine_mttr: SimDuration::from_secs(300),
            transient_fraction: 0.5,
            degraded_machines: 1,
            degraded_slowdown: 1.5,
            seed: 23,
            ..FaultConfig::default()
        };
        cfg.checkpoint = CheckpointConfig {
            interval: Some(SimDuration::from_secs(300)),
            cost: SimDuration::from_secs(5),
        };
        let (report, audit) = simulate_audited(&trace, &cfg);
        assert!(audit.checks > 0, "{policy:?}: auditor never ran");
        assert!(audit.is_clean(), "{policy:?}:\n{audit}");
        let faults: u64 = report.records.iter().map(|r| u64::from(r.faults)).sum();
        assert!(faults > 0, "{policy:?}: fault battery never fired");
    }
}
