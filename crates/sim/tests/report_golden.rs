#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures

//! Regression pin for the disabled-fault path: with every fault feature
//! off (no job MTBF, no machine faults, no degraded machines, no
//! checkpointing) the simulator must produce a byte-identical
//! [`muri_sim::SimReport`] across refactors. The fixture was generated
//! before the fault-domain subsystem landed; run with `MURI_BLESS=1` to
//! regenerate it after a *deliberate* behavior change.

use muri_core::{PolicyKind, SchedulerConfig};
use muri_sim::{simulate, SimConfig};
use muri_workload::philly_like_trace;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn check(name: &str, policy: PolicyKind) {
    let trace = philly_like_trace(1, 0.02); // deterministic 20-job slice
    let cfg = SimConfig::testbed(SchedulerConfig::preset(policy));
    let report = simulate(&trace, &cfg);
    let json = serde_json::to_string(&report).unwrap();
    let path = fixture_path(name);
    if std::env::var_os("MURI_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let pinned = std::fs::read_to_string(&path)
        .expect("fixture missing — regenerate with MURI_BLESS=1 cargo test");
    assert_eq!(
        json,
        pinned.trim_end(),
        "{name}: disabled-fault SimReport diverged from the pinned pre-fault-subsystem output"
    );
}

#[test]
fn disabled_path_muril_report_is_pinned() {
    check("report_disabled_muril.json", PolicyKind::MuriL);
}

#[test]
fn disabled_path_srsf_report_is_pinned() {
    check("report_disabled_srsf.json", PolicyKind::Srsf);
}
