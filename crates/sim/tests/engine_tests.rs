#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures

//! End-to-end tests of the discrete-event engine: conservation laws,
//! policy sanity, the headline Muri-vs-baseline effect, determinism,
//! noise, and fault injection.

use muri_cluster::ClusterSpec;
use muri_core::{PolicyKind, SchedulerConfig};
use muri_sim::{simulate, FaultConfig, SimConfig, SimReport};
use muri_workload::{JobId, JobSpec, ModelKind, ProfilerConfig, SimDuration, SimTime, Trace};

/// A small mixed trace: `n` single-GPU jobs cycling through the four
/// bottleneck classes, all submitted at t = 0. Every job has the same
/// solo *duration* (`base_iterations` × ShuffleNet's iteration time), so
/// priority order mixes the classes the way duration/model independence
/// does in real traces.
fn mixed_trace(n: usize, base_iterations: u64) -> Trace {
    let models = [
        ModelKind::ShuffleNet, // storage
        ModelKind::A2c,        // cpu
        ModelKind::Gpt2,       // gpu
        ModelKind::Vgg16,      // network
    ];
    let target = ModelKind::ShuffleNet.profile(16).iteration_time() * base_iterations;
    let jobs = (0..n)
        .map(|i| {
            JobSpec::from_duration(
                JobId(i as u32),
                models[i % models.len()],
                1,
                target,
                SimTime::ZERO,
            )
        })
        .collect();
    Trace::new("mixed", jobs)
}

fn small_config(policy: PolicyKind) -> SimConfig {
    let mut scheduler = SchedulerConfig::preset(policy);
    scheduler.interval = SimDuration::from_mins(2);
    scheduler.restart_penalty = SimDuration::from_secs(5);
    SimConfig {
        cluster: ClusterSpec::with_machines(1), // 8 GPUs
        ..SimConfig::testbed(scheduler)
    }
}

fn check_conservation(report: &SimReport, trace: &Trace) {
    assert_eq!(report.records.len(), trace.len(), "every job recorded");
    assert!(report.all_finished(), "all jobs must finish: {report:?}");
    for r in &report.records {
        assert_eq!(
            r.iterations_done, r.iterations_total,
            "{}: iterations incomplete",
            r.id
        );
        let finish = r.finish.expect("finished");
        let start = r.first_start.expect("started");
        assert!(start >= r.submit, "{}: started before submission", r.id);
        assert!(finish >= start, "{}: finished before starting", r.id);
        // A job cannot finish faster than its solo duration.
        let spec = trace.jobs.iter().find(|j| j.id == r.id).unwrap();
        let solo = spec.solo_duration();
        assert!(
            finish.since(start) + SimDuration::from_secs(1) >= solo,
            "{}: ran faster than physics allows ({} < {})",
            r.id,
            finish.since(start),
            solo
        );
    }
}

#[test]
fn single_job_completes_in_solo_time_plus_penalty() {
    let trace = mixed_trace(1, 50);
    let cfg = small_config(PolicyKind::Fifo);
    let report = simulate(&trace, &cfg);
    check_conservation(&report, &trace);
    let r = &report.records[0];
    let solo = trace.jobs[0].solo_duration();
    let jct = r.jct().unwrap();
    // Starts immediately (fill on arrival); pays one restart penalty.
    let expected = solo + cfg.scheduler.restart_penalty;
    assert_eq!(jct, expected, "JCT {jct} vs expected {expected}");
    assert_eq!(r.restarts, 0);
}

#[test]
fn all_policies_conserve_work() {
    let trace = mixed_trace(24, 60);
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::Sjf,
        PolicyKind::Srtf,
        PolicyKind::Srsf,
        PolicyKind::Las,
        PolicyKind::TwoDLas,
        PolicyKind::Tiresias,
        PolicyKind::Gittins,
        PolicyKind::Themis,
        PolicyKind::AntMan,
        PolicyKind::MuriS,
        PolicyKind::MuriL,
    ] {
        let report = simulate(&trace, &small_config(policy));
        check_conservation(&report, &trace);
    }
}

#[test]
fn simulation_is_deterministic() {
    let trace = mixed_trace(20, 40);
    let cfg = small_config(PolicyKind::MuriL);
    let a = simulate(&trace, &cfg);
    let b = simulate(&trace, &cfg);
    assert_eq!(a, b);
}

#[test]
fn muri_beats_srsf_on_complementary_workload() {
    // The headline effect: with jobs bottlenecked on different resources
    // and a deep backlog (many scheduling waves), interleaving packs up
    // to 4 jobs per GPU; the extra throughput wins on average JCT,
    // makespan, and tail JCT. (With a shallow backlog SRSF's optimal
    // ordering can still tie — the paper's gains likewise come from
    // loaded traces.)
    let trace = mixed_trace(128, 120);
    let srsf = simulate(&trace, &small_config(PolicyKind::Srsf));
    let muri = simulate(&trace, &small_config(PolicyKind::MuriS));
    check_conservation(&srsf, &trace);
    check_conservation(&muri, &trace);
    let jct_speedup = srsf.avg_jct_secs() / muri.avg_jct_secs();
    let makespan_speedup = srsf.makespan_secs() / muri.makespan_secs();
    // This hand-built trace is a stress case (4.3× spread in iteration
    // times); the JCT win lands at the low end of the paper's 1.13–2.26×
    // range, with decisive makespan and tail-JCT wins.
    assert!(
        jct_speedup > 1.05,
        "expected a JCT win, got {jct_speedup:.2}x (srsf {}, muri {})",
        srsf.avg_jct_secs(),
        muri.avg_jct_secs()
    );
    assert!(
        makespan_speedup > 1.15,
        "expected clear makespan win, got {makespan_speedup:.2}x"
    );
    assert!(
        muri.p99_jct_secs() < srsf.p99_jct_secs(),
        "tail JCT should improve: muri {} vs srsf {}",
        muri.p99_jct_secs(),
        srsf.p99_jct_secs()
    );
}

#[test]
fn srtf_beats_fifo_on_skewed_durations() {
    // One long job ahead of many short ones: FIFO head-of-line blocking
    // vs SRTF.
    let mut jobs = vec![JobSpec::new(
        JobId(0),
        ModelKind::Gpt2,
        8,
        3000,
        SimTime::ZERO,
    )];
    for i in 1..16 {
        jobs.push(JobSpec::new(
            JobId(i),
            ModelKind::Gpt2,
            8,
            30,
            SimTime::from_secs(1),
        ));
    }
    let trace = Trace::new("skewed", jobs);
    let fifo = simulate(&trace, &small_config(PolicyKind::Fifo));
    let srtf = simulate(&trace, &small_config(PolicyKind::Srtf));
    check_conservation(&fifo, &trace);
    check_conservation(&srtf, &trace);
    assert!(
        srtf.avg_jct_secs() < fifo.avg_jct_secs() * 0.7,
        "srtf {} vs fifo {}",
        srtf.avg_jct_secs(),
        fifo.avg_jct_secs()
    );
}

#[test]
fn profiling_noise_degrades_but_does_not_break_muri() {
    let trace = mixed_trace(24, 80);
    let clean = simulate(&trace, &small_config(PolicyKind::MuriL));
    let mut noisy_cfg = small_config(PolicyKind::MuriL);
    noisy_cfg.profiler = ProfilerConfig {
        noise: 1.0,
        reuse_cache: false,
        ..ProfilerConfig::default()
    };
    let noisy = simulate(&trace, &noisy_cfg);
    check_conservation(&noisy, &trace);
    // Noise can only mislead grouping decisions, not speed up physics:
    // allow a sliver of scheduling luck, but no real improvement.
    assert!(
        noisy.avg_jct_secs() >= clean.avg_jct_secs() * 0.9,
        "noisy {} vs clean {}",
        noisy.avg_jct_secs(),
        clean.avg_jct_secs()
    );
}

#[test]
fn faults_requeue_and_jobs_still_finish() {
    let trace = mixed_trace(12, 60);
    let mut cfg = small_config(PolicyKind::MuriL);
    cfg.faults = FaultConfig {
        mtbf: Some(SimDuration::from_secs(40)),
        seed: 7,
        ..FaultConfig::default()
    };
    let faulty = simulate(&trace, &cfg);
    check_conservation(&faulty, &trace);
    let total_faults: u32 = faulty.records.iter().map(|r| r.faults).sum();
    assert!(total_faults > 0, "fault injection should have fired");
    let clean = simulate(&trace, &small_config(PolicyKind::MuriL));
    // Faults waste work; modulo regrouping luck, JCT must not get
    // meaningfully better.
    assert!(
        faulty.avg_jct_secs() >= clean.avg_jct_secs() * 0.85,
        "faults should not clearly improve JCT: {} vs {}",
        faulty.avg_jct_secs(),
        clean.avg_jct_secs()
    );
}

#[test]
fn antman_shares_gpus_opportunistically() {
    // 16 single-GPU jobs on 8 GPUs, all at t0: AntMan co-locates the
    // overflow onto resident jobs (up to 2 per GPU) instead of queueing
    // it, so everyone starts immediately — at degraded speed.
    let trace = mixed_trace(16, 60);
    let antman = simulate(&trace, &small_config(PolicyKind::AntMan));
    check_conservation(&antman, &trace);
    let peak_running = antman
        .series
        .iter()
        .map(|s| s.running_jobs)
        .max()
        .unwrap_or(0);
    assert!(
        peak_running > 8,
        "AntMan should run more jobs than GPUs via sharing, got {peak_running}"
    );
    // FIFO without sharing would strand half the jobs in the queue.
    let fifo = simulate(&trace, &small_config(PolicyKind::Fifo));
    let fifo_peak = fifo
        .series
        .iter()
        .map(|s| s.running_jobs)
        .max()
        .unwrap_or(0);
    assert!(
        fifo_peak <= 8,
        "FIFO cannot exceed one job per GPU, got {fifo_peak}"
    );
}

#[test]
fn oversized_job_is_rejected_not_hung() {
    let jobs = vec![
        JobSpec::new(JobId(0), ModelKind::Bert, 16, 10, SimTime::ZERO), // > 8 GPUs
        JobSpec::new(JobId(1), ModelKind::Bert, 1, 10, SimTime::ZERO),
    ];
    let trace = Trace::new("oversize", jobs);
    let report = simulate(&trace, &small_config(PolicyKind::Fifo));
    assert_eq!(report.finished_jobs(), 1);
    let rejected = report.records.iter().find(|r| r.id == JobId(0)).unwrap();
    assert!(rejected.finish.is_none());
    assert!(rejected.first_start.is_none());
}

#[test]
fn utilization_series_is_sane() {
    let trace = mixed_trace(16, 80);
    let report = simulate(&trace, &small_config(PolicyKind::MuriS));
    assert!(!report.series.is_empty());
    for s in &report.series {
        for r in muri_workload::ResourceKind::ALL {
            assert!(
                (0.0..=1.0 + 1e-9).contains(&s.utilization[r]),
                "utilization out of range at {}: {}",
                s.time,
                s.utilization[r]
            );
        }
        assert!(s.used_gpus <= 8);
        assert!(s.blocking_index >= 0.0);
    }
}

#[test]
fn staggered_arrivals_respect_submit_times() {
    let jobs: Vec<JobSpec> = (0..10)
        .map(|i| {
            JobSpec::new(
                JobId(i),
                ModelKind::ResNet18,
                1,
                40,
                SimTime::from_secs(u64::from(i) * 100),
            )
        })
        .collect();
    let trace = Trace::new("staggered", jobs);
    let report = simulate(&trace, &small_config(PolicyKind::MuriL));
    check_conservation(&report, &trace);
    for r in &report.records {
        assert!(r.first_start.unwrap() >= r.submit);
    }
}

#[test]
fn group_size_cap_changes_behavior() {
    let trace = mixed_trace(32, 100);
    let mut cap2 = small_config(PolicyKind::MuriL);
    cap2.scheduler.grouping.max_group_size = 2;
    let r2 = simulate(&trace, &cap2);
    let r4 = simulate(&trace, &small_config(PolicyKind::MuriL));
    check_conservation(&r2, &trace);
    check_conservation(&r4, &trace);
    // With four complementary classes, 4-way groups should pack the
    // cluster tighter than pairs.
    assert!(
        r4.makespan_secs() <= r2.makespan_secs() * 1.05,
        "cap4 {} vs cap2 {}",
        r4.makespan_secs(),
        r2.makespan_secs()
    );
}
