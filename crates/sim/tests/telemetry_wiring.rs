#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures

//! Telemetry wiring and determinism regression tests.
//!
//! * An enabled sink must observe the run without changing it: the
//!   `SimReport` from `simulate_with_telemetry` is byte-identical to the
//!   one from `simulate`.
//! * The journal's lifecycle counts must balance against the report
//!   (arrivals = trace size, completions = finished records, restarts
//!   and faults match the per-job counters).
//! * Two runs under the same `SimConfig` seeds serialize to
//!   byte-identical JSON — the determinism contract replication and the
//!   golden benches rely on.

use muri_cluster::ClusterSpec;
use muri_core::{PolicyKind, SchedulerConfig};
use muri_sim::{simulate, simulate_with_telemetry, FaultConfig, SimConfig};
use muri_telemetry::{Telemetry, TelemetrySink};
use muri_workload::{philly_like_trace, ProfilerConfig, SimDuration};

fn config(policy: PolicyKind) -> SimConfig {
    let mut scheduler = SchedulerConfig::preset(policy);
    scheduler.interval = SimDuration::from_mins(2);
    scheduler.restart_penalty = SimDuration::from_secs(5);
    SimConfig {
        cluster: ClusterSpec::with_machines(1), // 8 GPUs
        ..SimConfig::testbed(scheduler)
    }
}

/// Noise + faults on, so both RNG streams (profiler, fault injection)
/// are exercised.
fn noisy_faulty_config(policy: PolicyKind) -> SimConfig {
    let mut cfg = config(policy);
    cfg.profiler = ProfilerConfig {
        noise: 0.3,
        reuse_cache: false,
        ..ProfilerConfig::default()
    };
    cfg.faults = FaultConfig {
        mtbf: Some(SimDuration::from_secs(120)),
        seed: 11,
        ..FaultConfig::default()
    };
    cfg
}

#[test]
fn telemetry_sink_does_not_perturb_the_simulation() {
    let trace = philly_like_trace(1, 0.02); // 20-job slice
    let cfg = noisy_faulty_config(PolicyKind::MuriL);
    let plain = simulate(&trace, &cfg);
    let sink = TelemetrySink::enabled(Telemetry::new());
    let instrumented = simulate_with_telemetry(&trace, &cfg, &sink);
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&instrumented).unwrap(),
        "telemetry must be a pure observer"
    );
}

#[test]
fn journal_counts_balance_against_the_report() {
    let trace = philly_like_trace(1, 0.02);
    let cfg = noisy_faulty_config(PolicyKind::MuriL);
    let sink = TelemetrySink::enabled(Telemetry::new());
    let report = simulate_with_telemetry(&trace, &cfg, &sink);
    let t = sink.into_inner().expect("engine dropped its sink clones");
    assert_eq!(t.journal.dropped(), 0, "journal must not have overflowed");
    let counts = t.journal.counts();

    assert_eq!(counts.arrived as usize, trace.len());
    assert_eq!(
        counts.completed as usize,
        report.records.iter().filter(|r| r.finish.is_some()).count()
    );
    assert_eq!(
        counts.first_starts as usize,
        report
            .records
            .iter()
            .filter(|r| r.first_start.is_some())
            .count()
    );
    assert_eq!(
        counts.restarts,
        report.records.iter().map(|r| u64::from(r.restarts)).sum()
    );
    assert_eq!(
        counts.faulted,
        report.records.iter().map(|r| u64::from(r.faults)).sum()
    );
    assert!(counts.planning_passes > 0, "at least one pass must plan");
    assert!(counts.groups_formed > 0, "at least one group must form");

    // The metrics registry counted the same lifecycle events.
    assert_eq!(
        t.metrics.counter_value("muri_jobs_arrived_total", &[]),
        Some(counts.arrived)
    );
    assert_eq!(
        t.metrics.counter_value("muri_jobs_completed_total", &[]),
        Some(counts.completed)
    );

    // The worker monitor fed per-resource utilization gauges.
    assert!(t
        .metrics
        .gauge_value("muri_utilization", &[("resource", "gpu")])
        .is_some());

    // The Chrome trace holds scheduler spans plus group lanes, and
    // validates (monotonic timestamps, complete events carry durations).
    assert!(!t.trace.is_empty());
    let json = t.trace.to_json();
    let stats = muri_telemetry::validate_chrome_trace(&json).expect("well-formed trace");
    assert!(stats.complete > 0);
}

#[test]
fn identical_seeds_give_byte_identical_reports() {
    let trace = philly_like_trace(1, 0.02);
    for policy in [PolicyKind::Srsf, PolicyKind::MuriL] {
        let cfg = noisy_faulty_config(policy);
        let a = simulate(&trace, &cfg);
        let b = simulate(&trace, &cfg);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "{policy:?}: same seeds must replay byte-identically"
        );
    }
}

#[test]
fn telemetry_exporters_are_deterministic_too() {
    let trace = philly_like_trace(1, 0.02);
    let cfg = noisy_faulty_config(PolicyKind::MuriL);
    let render = || {
        let sink = TelemetrySink::enabled(Telemetry::new());
        simulate_with_telemetry(&trace, &cfg, &sink);
        let t = sink.into_inner().expect("last handle");
        // Planning-pass events and the Prometheus muri_plan_*_seconds
        // histograms carry host wall-clock timings, which legitimately
        // differ run to run — compare everything that is sim-time only:
        // the lifecycle journal lines, the trace size, and a counter.
        let lifecycle: String = t
            .journal
            .to_jsonl()
            .lines()
            .filter(|l| !l.contains("\"planning_pass\""))
            .collect::<Vec<_>>()
            .join("\n");
        (
            lifecycle,
            t.trace.len(),
            t.metrics.counter_value("muri_groups_formed_total", &[]),
        )
    };
    let (j1, n1, g1) = render();
    let (j2, n2, g2) = render();
    assert_eq!(j1, j2, "lifecycle journal must be deterministic");
    assert_eq!(n1, n2, "chrome trace event count must be deterministic");
    assert_eq!(g1, g2);
}
