//! Placement-sensitivity tests for the cross-machine network penalty:
//! the §5 node-minimizing placement exists to keep synchronization
//! traffic on as few machines as possible, and this knob lets the
//! simulator price what happens when a job must span machines.

use muri_cluster::ClusterSpec;
use muri_core::{PolicyKind, SchedulerConfig};
use muri_sim::{simulate, SimConfig};
use muri_workload::{JobId, JobSpec, ModelKind, SimTime, Trace};

fn one_big_job(gpus: u32) -> Trace {
    Trace::new(
        "span",
        vec![JobSpec::new(
            JobId(0),
            ModelKind::Vgg19,
            gpus,
            500,
            SimTime::ZERO,
        )],
    )
}

fn config(penalty: f64) -> SimConfig {
    SimConfig {
        cluster: ClusterSpec::paper_testbed(), // 8 machines × 8 GPUs
        cross_machine_net_penalty: penalty,
        ..SimConfig::testbed(SchedulerConfig::preset(PolicyKind::Srsf))
    }
}

#[test]
fn single_machine_jobs_never_pay_the_penalty() {
    // An 8-GPU job fits one machine: identical JCT with or without the
    // penalty — the node-minimizing placement shields it.
    let trace = one_big_job(8);
    let free = simulate(&trace, &config(0.0));
    let taxed = simulate(&trace, &config(0.5));
    assert_eq!(
        free.records[0].jct(),
        taxed.records[0].jct(),
        "a one-machine job must not pay a cross-machine penalty"
    );
}

#[test]
fn spanning_jobs_slow_down_with_the_penalty() {
    // A 32-GPU job spans 4 machines: its network stage inflates by
    // 1 + 0.5 × 3 = 2.5×, and VGG19 is network-bound, so the JCT grows
    // substantially.
    let trace = one_big_job(32);
    let free = simulate(&trace, &config(0.0));
    let taxed = simulate(&trace, &config(0.5));
    let a = free.records[0].jct().unwrap().as_secs_f64();
    let b = taxed.records[0].jct().unwrap().as_secs_f64();
    assert!(
        b > a * 1.3,
        "4-machine VGG19 should pay a clear sync tax: {a:.0}s vs {b:.0}s"
    );
}

#[test]
fn penalty_scales_with_span() {
    let base = simulate(&one_big_job(16), &config(0.5)).records[0]
        .jct()
        .unwrap();
    let wide = simulate(&one_big_job(64), &config(0.5)).records[0]
        .jct()
        .unwrap();
    // 16 GPUs = 2 machines (factor 1.5); 64 GPUs = 8 machines (factor
    // 4.5). The compute stages are per-worker constants, so the wider
    // job's iteration is strictly longer.
    assert!(
        wide > base,
        "8-machine span ({wide}) must exceed 2-machine ({base})"
    );
}

#[test]
fn default_config_keeps_table2_calibration() {
    // The default penalty is zero precisely so the Eq. 3 / Table 2
    // calibration stays exact.
    let cfg = config(0.0);
    assert_eq!(cfg.cross_machine_net_penalty, 0.0);
    let default_cfg = SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriS));
    assert_eq!(default_cfg.cross_machine_net_penalty, 0.0);
}
