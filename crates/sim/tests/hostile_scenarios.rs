#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures

//! Hostile-cluster scenarios end to end: spot/preemptible machines with
//! advance-warning drains, heterogeneous GPU generations, elastic jobs,
//! and SLO deadlines. Every scenario must stay deterministic (same seed
//! → byte-identical reports, bit-identical across replication worker
//! counts), drained evictions must strictly beat no-warning evictions,
//! and the cluster must keep finishing work through all of it.

use muri_cluster::ClusterSpec;
use muri_core::{PolicyKind, SchedulerConfig};
use muri_sim::{
    replicate_with_workers, simulate, simulate_with_telemetry, CheckpointConfig, FaultConfig,
    SimConfig,
};
use muri_telemetry::{Event, Telemetry, TelemetrySink};
use muri_workload::{JobId, JobSpec, ModelKind, SimDuration, SimTime, SynthConfig, Trace};

/// `n` single-GPU jobs across the four bottleneck classes, each with
/// ~`solo_secs` of solo work, all submitted at t = 0 — enough backlog
/// that evictions, resizes, and deadline escalation all have something
/// to act on.
fn hostile_trace(n: usize, solo_secs: u64) -> Trace {
    let models = [
        ModelKind::ShuffleNet,
        ModelKind::A2c,
        ModelKind::Gpt2,
        ModelKind::Vgg16,
    ];
    let jobs = (0..n)
        .map(|i| {
            JobSpec::from_duration(
                JobId(i as u32),
                models[i % models.len()],
                1,
                SimDuration::from_secs(solo_secs),
                SimTime::ZERO,
            )
        })
        .collect();
    Trace::new("hostile-trace", jobs)
}

/// Two machines (16 GPUs), fast scheduling, no fault features: each
/// scenario test switches on exactly the knobs it exercises.
fn base_config() -> SimConfig {
    let mut scheduler = SchedulerConfig::preset(PolicyKind::MuriL);
    scheduler.interval = SimDuration::from_mins(2);
    scheduler.restart_penalty = SimDuration::from_secs(5);
    let mut cfg = SimConfig {
        cluster: ClusterSpec::with_machines(2),
        ..SimConfig::testbed(scheduler)
    };
    cfg.faults = FaultConfig {
        seed: 11,
        ..FaultConfig::default()
    };
    cfg
}

/// Spot scenario: one preemptible machine, evictions every ~400 s, the
/// machine away for 120 s. `warning_secs` is the advance notice; the
/// 2 s checkpoint cost fits any non-zero window here. No periodic
/// checkpoints — the drain is the only durable mark, so a no-warning
/// eviction destroys everything since the job's last graceful stop.
fn spot_config(warning_secs: u64) -> SimConfig {
    let mut cfg = base_config();
    cfg.faults.spot_machines = 1;
    cfg.faults.spot_mtbe = Some(SimDuration::from_secs(400));
    cfg.faults.spot_warning = SimDuration::from_secs(warning_secs);
    cfg.faults.spot_downtime = SimDuration::from_secs(120);
    cfg.checkpoint = CheckpointConfig {
        interval: None,
        cost: SimDuration::from_secs(2),
    };
    cfg
}

/// Run a trace and return (report, telemetry journal).
fn run_journaled(trace: &Trace, cfg: &SimConfig) -> (muri_sim::SimReport, muri_telemetry::Journal) {
    let sink = TelemetrySink::enabled(Telemetry::new());
    let report = simulate_with_telemetry(trace, cfg, &sink);
    let t = sink.into_inner().expect("last telemetry handle");
    (report, t.journal)
}

/// Same seed ⇒ byte-identical reports.
fn assert_deterministic(trace: &Trace, cfg: &SimConfig, what: &str) {
    let a = simulate(trace, cfg);
    let b = simulate(trace, cfg);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "{what}: same seed must replay byte-identically"
    );
}

#[test]
fn spot_eviction_runs_are_deterministic() {
    let trace = hostile_trace(12, 1200);
    assert_deterministic(&trace, &spot_config(60), "spot with warning");
    assert_deterministic(&trace, &spot_config(0), "spot without warning");
}

#[test]
fn drained_evictions_strictly_reduce_lost_work() {
    let trace = hostile_trace(12, 1200);
    let tally = |cfg: &SimConfig| {
        let (report, journal) = run_journaled(&trace, cfg);
        assert!(report.all_finished(), "jobs must ride out evictions");
        let mut evictions = 0u64;
        let mut drained = 0u64;
        let mut wasted = SimDuration::ZERO;
        for e in journal.events() {
            match e {
                Event::SpotEvicted {
                    drained: d,
                    wasted: w,
                    ..
                } => {
                    evictions += 1;
                    drained += d;
                    wasted += *w;
                }
                Event::WorkLost { wasted: w, .. } => wasted += *w,
                _ => {}
            }
        }
        (evictions, drained, wasted)
    };
    // One RNG draw per eviction cycle regardless of the warning setting,
    // so both runs draw the same eviction gaps — the warned run just
    // drains before each hit (and, losing less work, finishes sooner,
    // which can fit fewer eviction cycles before the trace drains).
    let (ev_warned, drained_warned, wasted_warned) = tally(&spot_config(60));
    let (ev_flat, drained_flat, wasted_flat) = tally(&spot_config(0));
    assert!(ev_warned > 0, "warned scenario must actually evict");
    assert!(ev_flat > 0, "no-warning scenario must actually evict");
    assert!(
        ev_warned <= ev_flat,
        "draining must not prolong the run into extra evictions: \
         {ev_warned} vs {ev_flat}"
    );
    assert!(
        drained_warned > 0,
        "warned evictions must drain hosted jobs to a checkpoint"
    );
    assert_eq!(drained_flat, 0, "no warning, no drain");
    assert!(
        wasted_flat > SimDuration::ZERO,
        "no-warning evictions must lose work"
    );
    assert!(
        wasted_warned < wasted_flat,
        "drained evictions must strictly reduce lost work: \
         {wasted_warned} vs {wasted_flat}"
    );
}

#[test]
fn spot_capacity_returns_after_downtime() {
    let trace = hostile_trace(12, 1200);
    let (report, journal) = run_journaled(&trace, &spot_config(30));
    assert!(report.all_finished());
    assert!(journal.counts().spot_evictions > 0);
    for r in &report.records {
        assert_eq!(r.iterations_done, r.iterations_total, "{}", r.id);
    }
}

#[test]
fn hetero_generation_runs_are_deterministic() {
    let trace = hostile_trace(12, 1200);
    let mut cfg = base_config();
    cfg.faults.gpu_generations = 2;
    cfg.faults.generation_gap = 1.0;
    assert_deterministic(&trace, &cfg, "two GPU generations");
}

#[test]
fn old_generations_slow_the_cluster_down() {
    let trace = hostile_trace(12, 1200);
    let homogeneous = base_config();
    let mut hetero = base_config();
    hetero.faults.gpu_generations = 2;
    hetero.faults.generation_gap = 1.0; // generation 1 runs 2x slower
    let fast = simulate(&trace, &homogeneous);
    let slow = simulate(&trace, &hetero);
    assert!(fast.all_finished() && slow.all_finished());
    assert!(
        slow.avg_jct_secs() > fast.avg_jct_secs(),
        "stages on the old generation must lengthen JCTs: {} vs {}",
        slow.avg_jct_secs(),
        fast.avg_jct_secs()
    );
}

#[test]
fn elastic_jobs_resize_and_still_finish_their_work() {
    let trace = hostile_trace(12, 1200);
    let mut cfg = base_config();
    cfg.faults.elastic_fraction = 0.5;
    cfg.faults.elastic_interval = Some(SimDuration::from_secs(300));
    assert_deterministic(&trace, &cfg, "elastic resizing");
    let (report, journal) = run_journaled(&trace, &cfg);
    assert!(report.all_finished(), "resizes must not strand jobs");
    assert!(
        journal.counts().elastic_resizes > 0,
        "the 50% elastic draw must actually resize someone"
    );
    for r in &report.records {
        assert_eq!(
            r.iterations_done, r.iterations_total,
            "{}: a resize must conserve requested work",
            r.id
        );
    }
}

#[test]
fn slo_runs_are_deterministic_and_deadline_jobs_exist() {
    let trace = hostile_trace(24, 900);
    let mut cfg = base_config();
    cfg.faults.slo_fraction = 0.5;
    cfg.faults.slo_slack = 1.5;
    assert_deterministic(&trace, &cfg, "SLO deadlines");
    let tagged = trace
        .jobs
        .iter()
        .filter(|j| cfg.faults.deadline_for(j).is_some())
        .count();
    assert!(
        tagged > 0 && tagged < trace.len(),
        "the seeded draw must tag some but not all jobs ({tagged}/{})",
        trace.len()
    );
}

#[test]
fn slo_escalation_pulls_deadline_jobs_forward() {
    // Identical jobs, heavy backlog: without deadlines the two halves
    // of the draw finish symmetrically; with escalation the deadline
    // jobs' priority rises as slack burns, so they must finish no later
    // on average.
    let trace = hostile_trace(24, 900);
    let mut with_slo = base_config();
    with_slo.faults.slo_fraction = 0.5;
    with_slo.faults.slo_slack = 1.5;
    let plain = base_config();
    let slo_jobs: Vec<JobId> = trace
        .jobs
        .iter()
        .filter(|j| with_slo.faults.deadline_for(j).is_some())
        .map(|j| j.id)
        .collect();
    let mean_jct = |report: &muri_sim::SimReport| {
        let jcts: Vec<f64> = report
            .records
            .iter()
            .filter(|r| slo_jobs.contains(&r.id))
            .filter_map(muri_sim::JobRecord::jct)
            .map(muri_workload::SimDuration::as_secs_f64)
            .collect();
        assert!(!jcts.is_empty());
        jcts.iter().sum::<f64>() / jcts.len() as f64
    };
    let escalated = simulate(&trace, &with_slo);
    let baseline = simulate(&trace, &plain);
    assert!(escalated.all_finished() && baseline.all_finished());
    assert!(
        mean_jct(&escalated) <= mean_jct(&baseline),
        "escalation must not push deadline jobs later: {} vs {}",
        mean_jct(&escalated),
        mean_jct(&baseline)
    );
}

/// All four scenarios at once.
fn combined_config() -> SimConfig {
    let mut cfg = spot_config(45);
    cfg.faults.gpu_generations = 2;
    cfg.faults.generation_gap = 0.5;
    cfg.faults.elastic_fraction = 0.3;
    cfg.faults.elastic_interval = Some(SimDuration::from_secs(400));
    cfg.faults.slo_fraction = 0.3;
    cfg.faults.slo_slack = 2.0;
    cfg
}

#[test]
fn combined_hostile_runs_are_deterministic_and_finish() {
    let trace = hostile_trace(12, 1200);
    let cfg = combined_config();
    assert_deterministic(&trace, &cfg, "all four scenarios combined");
    let report = simulate(&trace, &cfg);
    assert!(report.all_finished(), "hostile cluster must still finish");
}

#[test]
fn hostile_replication_is_worker_count_invariant() {
    let synth = SynthConfig {
        num_jobs: 16,
        duration_median_secs: 240.0,
        duration_sigma: 0.8,
        load_reference_gpus: 8,
        target_load: 1.0,
        gpu_dist: muri_workload::GpuDistribution::default().capped(4),
        max_duration: SimDuration::from_mins(30),
        ..SynthConfig::default()
    };
    let cfg = combined_config();
    let sequential = replicate_with_workers(&synth, &cfg, 4, 1);
    let parallel = replicate_with_workers(&synth, &cfg, 4, 4);
    assert_eq!(
        sequential, parallel,
        "hostile replication must not depend on worker striping"
    );
}

/// The audited engine path over the full hostile suite: every scenario
/// audit (spot drain bounds, hetero placement legality, elastic
/// conservation, SLO escalation monotonicity) plus the standing
/// invariants must hold with zero violations.
#[cfg(feature = "audit")]
#[test]
fn audited_hostile_simulation_is_violation_free() {
    let trace = hostile_trace(12, 1200);
    let (report, audit) = muri_sim::simulate_audited(&trace, &combined_config());
    assert!(report.all_finished());
    assert!(audit.checks > 0, "audits must actually run");
    assert!(audit.is_clean(), "{}", audit.render());
}
