#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures

//! Machine-level fault domains end to end: checkpoint/restore must pay
//! for itself, fault injection must stay deterministic (same seeds →
//! byte-identical reports, sequential and parallel replication agree),
//! and the cluster must keep finishing work through machine failures
//! and degraded machines.

use muri_cluster::ClusterSpec;
use muri_core::{PolicyKind, SchedulerConfig};
use muri_sim::{
    replicate_with_workers, simulate, simulate_with_telemetry, CheckpointConfig, FaultConfig,
    SimConfig,
};
use muri_telemetry::{Event, Telemetry, TelemetrySink};
use muri_workload::{JobId, JobSpec, ModelKind, SimDuration, SimTime, SynthConfig, Trace};

/// `n` single-GPU jobs across the four bottleneck classes, each with
/// ~`solo_secs` of solo work, all submitted at t = 0. Long enough that a
/// machine fault mid-run has real progress to destroy.
fn fault_trace(n: usize, solo_secs: u64) -> Trace {
    let models = [
        ModelKind::ShuffleNet,
        ModelKind::A2c,
        ModelKind::Gpt2,
        ModelKind::Vgg16,
    ];
    let jobs = (0..n)
        .map(|i| {
            JobSpec::from_duration(
                JobId(i as u32),
                models[i % models.len()],
                1,
                SimDuration::from_secs(solo_secs),
                SimTime::ZERO,
            )
        })
        .collect();
    Trace::new("fault-trace", jobs)
}

/// Two machines, machine faults on, no per-job faults: the only
/// progress losses come from machine-level fault domains.
fn machine_fault_config(checkpoint_secs: Option<u64>) -> SimConfig {
    let mut scheduler = SchedulerConfig::preset(PolicyKind::MuriL);
    scheduler.interval = SimDuration::from_mins(2);
    scheduler.restart_penalty = SimDuration::from_secs(5);
    let mut cfg = SimConfig {
        cluster: ClusterSpec::with_machines(2), // 16 GPUs
        ..SimConfig::testbed(scheduler)
    };
    cfg.faults = FaultConfig {
        machine_mtbf: Some(SimDuration::from_secs(450)),
        machine_mttr: SimDuration::from_secs(120),
        transient_fraction: 0.5,
        seed: 7,
        ..FaultConfig::default()
    };
    cfg.checkpoint = CheckpointConfig {
        interval: checkpoint_secs.map(SimDuration::from_secs),
        cost: SimDuration::from_secs(2),
    };
    cfg
}

/// Sum of wall-clock destroyed by rollbacks, and machine-failure count.
fn run_lost_work(cfg: &SimConfig) -> (SimDuration, u64) {
    let trace = fault_trace(12, 1200);
    let sink = TelemetrySink::enabled(Telemetry::new());
    let report = simulate_with_telemetry(&trace, cfg, &sink);
    assert!(report.all_finished(), "jobs must finish: {report:?}");
    let t = sink.into_inner().expect("last telemetry handle");
    let wasted = t
        .journal
        .events()
        .iter()
        .map(|e| match e {
            Event::WorkLost { wasted, .. } => *wasted,
            _ => SimDuration::ZERO,
        })
        .sum();
    (wasted, t.journal.counts().machine_failures)
}

#[test]
fn checkpointing_strictly_reduces_lost_work() {
    // Flat-restart baseline: no checkpoints, so a machine fault destroys
    // everything since the job's last graceful stop.
    let (lost_flat, failures_flat) = run_lost_work(&machine_fault_config(None));
    // Checkpointing every 60 s bounds the exposure per fault.
    let (lost_ckpt, failures_ckpt) = run_lost_work(&machine_fault_config(Some(60)));
    assert!(failures_flat > 0, "scenario must actually fail machines");
    assert!(failures_ckpt > 0, "scenario must actually fail machines");
    assert!(
        lost_flat > SimDuration::ZERO,
        "flat restarts must lose work"
    );
    assert!(
        lost_ckpt < lost_flat,
        "checkpointing must strictly reduce lost work: {lost_ckpt} vs {lost_flat}"
    );
}

#[test]
fn machine_fault_runs_are_byte_identical_across_replays() {
    let trace = fault_trace(12, 1200);
    let mut cfg = machine_fault_config(Some(90));
    cfg.faults.degraded_machines = 1;
    cfg.faults.degraded_slowdown = 1.5;
    let a = simulate(&trace, &cfg);
    let b = simulate(&trace, &cfg);
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "same fault seeds must replay byte-identically"
    );
}

#[test]
fn jobs_finish_through_machine_failures_and_degradation() {
    let trace = fault_trace(12, 1200);
    let mut cfg = machine_fault_config(Some(120));
    cfg.faults.degraded_machines = 1;
    let report = simulate(&trace, &cfg);
    assert!(
        report.all_finished(),
        "cluster must ride out machine faults"
    );
    let faults: u64 = report.records.iter().map(|r| u64::from(r.faults)).sum();
    assert!(faults > 0, "machine faults must have cascaded to jobs");
    for r in &report.records {
        assert_eq!(r.iterations_done, r.iterations_total, "{}", r.id);
    }
}

#[test]
fn degraded_machines_slow_the_cluster_down() {
    let trace = fault_trace(12, 1200);
    let mut healthy = machine_fault_config(None);
    healthy.faults.machine_mtbf = None; // isolate the degradation effect
    let mut degraded = healthy;
    degraded.faults.degraded_machines = 2; // both machines limp
    degraded.faults.degraded_slowdown = 2.0;
    let fast = simulate(&trace, &healthy);
    let slow = simulate(&trace, &degraded);
    assert!(fast.all_finished() && slow.all_finished());
    assert!(
        slow.avg_jct_secs() > fast.avg_jct_secs(),
        "degraded stages must lengthen JCTs: {} vs {}",
        slow.avg_jct_secs(),
        fast.avg_jct_secs()
    );
}

#[test]
fn replication_is_worker_count_invariant_under_faults() {
    let synth = SynthConfig {
        num_jobs: 16,
        duration_median_secs: 240.0,
        duration_sigma: 0.8,
        load_reference_gpus: 8,
        target_load: 1.0,
        gpu_dist: muri_workload::GpuDistribution::default().capped(4),
        max_duration: SimDuration::from_mins(30),
        ..SynthConfig::default()
    };
    let sim = machine_fault_config(Some(120));
    let sequential = replicate_with_workers(&synth, &sim, 4, 1);
    let parallel = replicate_with_workers(&synth, &sim, 4, 4);
    assert_eq!(
        sequential, parallel,
        "faulty replication must not depend on worker striping"
    );
}
