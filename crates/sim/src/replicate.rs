//! Multi-seed replication: run the same (policy, workload-shape)
//! configuration over several independently seeded traces and summarize
//! the metric spread. Single-trace comparisons can hinge on one lucky
//! burst; replication is how the repo distinguishes a real scheduling
//! effect from trace noise.

use crate::config::SimConfig;
use crate::engine::simulate;
use muri_workload::stats;
use muri_workload::SynthConfig;
use serde::{Deserialize, Serialize};

/// Mean and spread of one metric across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MetricSummary {
    /// Arithmetic mean across replicas.
    pub mean: f64,
    /// Sample standard deviation (0 for a single replica).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl MetricSummary {
    /// Summarize a set of observations. Panics on an empty slice.
    pub fn from_observations(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "need at least one observation");
        let mean = stats::mean(xs);
        let var = if xs.len() < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64
        };
        MetricSummary {
            mean,
            std_dev: var.sqrt(),
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }
}

/// Replicated metrics of one policy over re-seeded traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedMetrics {
    /// Replicas run.
    pub replicas: usize,
    /// Average JCT (seconds).
    pub avg_jct: MetricSummary,
    /// 99th-percentile JCT (seconds).
    pub p99_jct: MetricSummary,
    /// Makespan (seconds).
    pub makespan: MetricSummary,
}

/// Per-replica observations, in replica order.
type Observation = [f64; 3]; // avg JCT, p99 JCT, makespan (seconds)

/// Run replica `i` of the re-seeded workload shape.
fn run_replica(synth: &SynthConfig, sim: &SimConfig, i: usize) -> Observation {
    let mut cfg = synth.clone();
    cfg.seed = synth.seed.wrapping_add(i as u64 * 0x9E37_79B9);
    cfg.name = format!("{}-r{i}", synth.name);
    let trace = cfg.generate();
    let report = simulate(&trace, sim);
    [
        report.avg_jct_secs(),
        report.p99_jct_secs(),
        report.makespan_secs(),
    ]
}

/// Run `replicas` simulations of the same workload *shape* (the synth
/// config re-seeded per replica) under one scheduler configuration.
///
/// Replicas are independent (each gets its own deterministically derived
/// seed), so they run on scoped worker threads — the same striped
/// pattern as `DenseGraph::build_symmetric`: each worker owns a disjoint
/// slice of the result vector, writes are contention-free, and the
/// summary is computed from the replica-ordered observations, so the
/// output is bit-identical to the sequential run.
pub fn replicate(synth: &SynthConfig, sim: &SimConfig, replicas: usize) -> ReplicatedMetrics {
    let workers = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    replicate_with_workers(synth, sim, replicas, workers)
}

/// [`replicate`] with an explicit worker-thread count (clamped to
/// `[1, replicas]`). `workers = 1` forces the sequential path; the
/// determinism tests compare it byte-for-byte against parallel runs.
pub fn replicate_with_workers(
    synth: &SynthConfig,
    sim: &SimConfig,
    replicas: usize,
    workers: usize,
) -> ReplicatedMetrics {
    assert!(replicas >= 1, "need at least one replica");
    let workers = workers.clamp(1, replicas);
    let mut results: Vec<Observation> = vec![[0.0; 3]; replicas];
    if workers == 1 {
        for (i, slot) in results.iter_mut().enumerate() {
            *slot = run_replica(synth, sim, i);
        }
    } else {
        // Stripe replica indices across workers; each worker holds `&mut`
        // slots for its own indices only.
        let mut stripes: Vec<Vec<(usize, &mut Observation)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, slot) in results.iter_mut().enumerate() {
            stripes[i % workers].push((i, slot));
        }
        std::thread::scope(|s| {
            for stripe in stripes {
                s.spawn(move || {
                    for (i, slot) in stripe {
                        *slot = run_replica(synth, sim, i);
                    }
                });
            }
        });
    }
    let collect = |k: usize| -> Vec<f64> { results.iter().map(|obs| obs[k]).collect() };
    ReplicatedMetrics {
        replicas,
        avg_jct: MetricSummary::from_observations(&collect(0)),
        p99_jct: MetricSummary::from_observations(&collect(1)),
        makespan: MetricSummary::from_observations(&collect(2)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muri_cluster::ClusterSpec;
    use muri_core::{PolicyKind, SchedulerConfig};
    use muri_workload::SimDuration;

    fn small_synth() -> SynthConfig {
        SynthConfig {
            num_jobs: 24,
            duration_median_secs: 120.0,
            duration_sigma: 0.8,
            load_reference_gpus: 8,
            target_load: 1.2,
            gpu_dist: muri_workload::GpuDistribution::default().capped(4),
            max_duration: SimDuration::from_mins(30),
            ..SynthConfig::default()
        }
    }

    fn small_sim(policy: PolicyKind) -> SimConfig {
        SimConfig {
            cluster: ClusterSpec::with_machines(1),
            ..SimConfig::testbed(SchedulerConfig::preset(policy))
        }
    }

    #[test]
    fn summary_math() {
        let s = MetricSummary::from_observations(&[1.0, 2.0, 3.0]);
        assert_eq!(s.mean, 2.0);
        assert!((s.std_dev - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!((s.cv() - 0.5).abs() < 1e-12);
        let single = MetricSummary::from_observations(&[4.0]);
        assert_eq!(single.std_dev, 0.0);
    }

    #[test]
    fn replication_covers_distinct_traces() {
        let r = replicate(&small_synth(), &small_sim(PolicyKind::MuriL), 3);
        assert_eq!(r.replicas, 3);
        // Re-seeded traces differ, so the spread is almost surely nonzero.
        assert!(r.avg_jct.std_dev > 0.0, "{r:?}");
        assert!(r.avg_jct.min <= r.avg_jct.mean && r.avg_jct.mean <= r.avg_jct.max);
    }

    #[test]
    fn replicated_comparison_is_more_stable_than_single_run() {
        // The point of replication: compare policies on means.
        let muri = replicate(&small_synth(), &small_sim(PolicyKind::MuriL), 3);
        let tiresias = replicate(&small_synth(), &small_sim(PolicyKind::Tiresias), 3);
        assert!(
            muri.avg_jct.mean <= tiresias.avg_jct.mean * 1.15,
            "Muri-L mean {} vs Tiresias mean {}",
            muri.avg_jct.mean,
            tiresias.avg_jct.mean
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_replicas_rejected() {
        let _ = replicate(&small_synth(), &small_sim(PolicyKind::Fifo), 0);
    }

    #[test]
    fn parallel_replication_is_deterministic() {
        // Replica seeds derive from the index, and the summary is built
        // from the replica-ordered observations — so two runs (whatever
        // the worker striping) must agree bit for bit.
        let a = replicate(&small_synth(), &small_sim(PolicyKind::MuriL), 5);
        let b = replicate(&small_synth(), &small_sim(PolicyKind::MuriL), 5);
        assert_eq!(a, b);
    }
}
