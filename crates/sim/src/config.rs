//! Simulation configuration.

use muri_cluster::ClusterSpec;
use muri_core::SchedulerConfig;
use muri_workload::{ProfilerConfig, SimDuration};
use serde::{Deserialize, Serialize};

/// Fault-injection configuration (§5: executors report faults to the
/// worker monitor; the job is terminated and pushed back to the queue).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct FaultConfig {
    /// Mean time between faults per running job (exponential). `None`
    /// disables fault injection (the paper's evaluation runs fault-free).
    pub mtbf: Option<SimDuration>,
    /// RNG seed for fault times.
    pub seed: u64,
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Scheduler under test.
    pub scheduler: SchedulerConfig,
    /// Profiler (noise) configuration — what the scheduler *sees*.
    pub profiler: ProfilerConfig,
    /// Fault injection.
    pub faults: FaultConfig,
    /// Execution overhead per extra interleaved group member: a group of
    /// `m` jobs runs `1 + o·(m−1)` slower than Eq. 3 predicts. Models the
    /// residual contention the paper cites for why 4-job groups don't
    /// reach 4× ("other resource types may still be used in this stage…
    /// resource contention between different stages decreases the
    /// processing speed", §6.2). Calibrated against Table 2: the measured
    /// aggregate normalized throughput of the ideal 4-way group is 2.00
    /// versus 2.18 predicted by Eq. 3 with our profiles — a 9% overhead
    /// for a 4-way group, i.e. 0.03 per extra member.
    pub interleave_overhead_per_job: f64,
    /// Execution overhead per extra co-located job for GPU-sharing
    /// without interleaving barriers (AntMan): larger, because stages
    /// collide instead of dovetailing.
    pub sharing_overhead_per_job: f64,
    /// Per-extra-machine penalty on the network (synchronization) stage
    /// of a group that spans machines: the stage scales by
    /// `1 + p·(machines − 1)`. Off by default (0.0) so the closed-form
    /// Eq. 3 calibration against Table 2 stays exact; enable to study
    /// placement sensitivity (the §5 node-minimizing placement exists to
    /// keep this penalty at zero).
    pub cross_machine_net_penalty: f64,
    /// Safety horizon: the run aborts (jobs left unfinished) past this.
    pub max_sim_time: SimDuration,
}

impl SimConfig {
    /// Paper-testbed defaults for a given scheduler.
    pub fn testbed(scheduler: SchedulerConfig) -> Self {
        SimConfig {
            cluster: ClusterSpec::paper_testbed(),
            scheduler,
            profiler: ProfilerConfig::exact(),
            faults: FaultConfig::default(),
            interleave_overhead_per_job: 0.03,
            sharing_overhead_per_job: 0.25,
            cross_machine_net_penalty: 0.0,
            max_sim_time: SimDuration::from_hours(24 * 365),
        }
    }

    /// Effective execution slowdown factor for a group of `m` jobs under
    /// this config ( ≥ 1 ).
    pub fn group_overhead(&self, m: usize, gpu_sharing: bool) -> f64 {
        if m <= 1 {
            return 1.0;
        }
        let per = if gpu_sharing {
            self.sharing_overhead_per_job
        } else {
            self.interleave_overhead_per_job
        };
        1.0 + per * (m as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muri_core::PolicyKind;

    #[test]
    fn overhead_scales_with_group_size() {
        let cfg = SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriS));
        assert_eq!(cfg.group_overhead(1, false), 1.0);
        assert!((cfg.group_overhead(4, false) - 1.09).abs() < 1e-12);
        assert!(cfg.group_overhead(2, true) > cfg.group_overhead(2, false));
    }
}
