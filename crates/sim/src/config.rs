//! Simulation configuration.

use muri_cluster::{ClusterSpec, HealthPolicy};
use muri_core::SchedulerConfig;
use muri_workload::{JobSpec, ProfilerConfig, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Fault-domain plan (§5: executors report faults to the worker monitor;
/// the job is terminated and pushed back to the queue). Beyond the
/// original per-job MTBF model this injects machine-level fail-stop and
/// transient faults — a machine fault cascades to every job and group
/// the machine hosts — and degraded machines that run every stage of
/// jobs placed on them slower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Mean time between faults per running job (exponential). `None`
    /// disables per-job fault injection (the paper's evaluation runs
    /// fault-free).
    pub mtbf: Option<SimDuration>,
    /// RNG seed for all fault streams (per-job, machine, degradation).
    pub seed: u64,
    /// Mean time between machine-level faults, per machine
    /// (exponential). `None` disables machine faults.
    #[serde(default)]
    pub machine_mtbf: Option<SimDuration>,
    /// Mean time to repair a fail-stopped machine (exponential).
    #[serde(default)]
    pub machine_mttr: SimDuration,
    /// Fraction of machine faults that are transient (the machine stays
    /// up; only its jobs die). The rest are fail-stop.
    #[serde(default)]
    pub transient_fraction: f64,
    /// Number of machines that run degraded (chosen by seeded draw).
    #[serde(default)]
    pub degraded_machines: u32,
    /// Slowdown factor applied to every stage of jobs placed on a
    /// degraded machine.
    #[serde(default)]
    pub degraded_slowdown: f64,
    /// Worker-monitor health thresholds (blacklisting policy).
    #[serde(default)]
    pub health: HealthPolicy,
    /// Number of spot/preemptible machines (chosen by seeded draw).
    /// Spot machines are periodically evicted and later restored.
    #[serde(default)]
    pub spot_machines: u32,
    /// Mean time between evictions per spot machine (exponential).
    /// `None` disables spot evictions even if `spot_machines > 0`.
    #[serde(default)]
    pub spot_mtbe: Option<SimDuration>,
    /// Advance warning a spot machine gets before eviction. During the
    /// warning window the engine drains hosted groups to a checkpoint so
    /// the eviction destroys no work past the drain point. Zero means
    /// no-warning eviction (work since the last durable mark is lost).
    #[serde(default)]
    pub spot_warning: SimDuration,
    /// How long an evicted spot machine stays away before capacity
    /// returns.
    #[serde(default = "default_spot_downtime")]
    pub spot_downtime: SimDuration,
    /// Number of distinct GPU generations in the cluster. Machine `m`
    /// belongs to generation `m % gpu_generations`; generation 0 is the
    /// newest. `0` or `1` means a homogeneous cluster.
    #[serde(default)]
    pub gpu_generations: u32,
    /// Relative slowdown per generation step: generation `g` runs every
    /// stage `1 + generation_gap * g` slower than generation 0.
    #[serde(default = "default_generation_gap")]
    pub generation_gap: f64,
    /// Fraction of jobs that are elastic (grow/shrink GPU count at
    /// iteration boundaries). Chosen per job by a pure seeded draw.
    #[serde(default)]
    pub elastic_fraction: f64,
    /// Mean time between resize events per elastic job (exponential).
    /// `None` disables elastic resizing even if `elastic_fraction > 0`.
    #[serde(default)]
    pub elastic_interval: Option<SimDuration>,
    /// Fraction of jobs carrying an SLO deadline. Chosen per job by a
    /// pure seeded draw.
    #[serde(default)]
    pub slo_fraction: f64,
    /// Deadline slack multiplier: an SLO job's deadline is
    /// `submit + slo_slack * solo_duration`.
    #[serde(default = "default_slo_slack")]
    pub slo_slack: f64,
}

fn default_spot_downtime() -> SimDuration {
    SimDuration::from_secs(600)
}

fn default_generation_gap() -> f64 {
    0.5
}

fn default_slo_slack() -> f64 {
    2.0
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            mtbf: None,
            seed: 0,
            machine_mtbf: None,
            machine_mttr: SimDuration::from_secs(600),
            transient_fraction: 0.5,
            degraded_machines: 0,
            degraded_slowdown: 1.5,
            health: HealthPolicy::default(),
            spot_machines: 0,
            spot_mtbe: None,
            spot_warning: SimDuration::ZERO,
            spot_downtime: default_spot_downtime(),
            gpu_generations: 0,
            generation_gap: default_generation_gap(),
            elastic_fraction: 0.0,
            elastic_interval: None,
            slo_fraction: 0.0,
            slo_slack: default_slo_slack(),
        }
    }
}

impl FaultPlan {
    /// True when machine-health tracking matters: machine faults or
    /// degraded machines are in play, so the engine feeds the monitor
    /// and syncs blacklists into placement.
    pub fn health_active(&self) -> bool {
        self.machine_mtbf.is_some() || self.degraded_machines > 0
    }

    /// True when any fault feature is enabled.
    pub fn any_active(&self) -> bool {
        self.mtbf.is_some()
            || self.health_active()
            || self.spot_active()
            || self.hetero_active()
            || self.elastic_active()
            || self.slo_active()
    }

    /// True when spot/preemptible evictions are in play.
    pub fn spot_active(&self) -> bool {
        self.spot_machines > 0 && self.spot_mtbe.is_some()
    }

    /// True when the cluster mixes GPU generations.
    pub fn hetero_active(&self) -> bool {
        self.gpu_generations > 1 && self.generation_gap > 0.0
    }

    /// True when elastic resizing is in play.
    pub fn elastic_active(&self) -> bool {
        self.elastic_fraction > 0.0 && self.elastic_interval.is_some()
    }

    /// True when SLO deadline jobs are in play.
    pub fn slo_active(&self) -> bool {
        self.slo_fraction > 0.0
    }

    /// Generation of machine `m` under this plan (0 = newest). A
    /// homogeneous cluster puts every machine in generation 0.
    pub fn generation_of(&self, machine: u32) -> u32 {
        if self.gpu_generations > 1 {
            machine % self.gpu_generations
        } else {
            0
        }
    }

    /// Stage-duration speed factor of generation `g` ( ≥ 1 ).
    pub fn generation_factor(&self, generation: u32) -> f64 {
        1.0 + self.generation_gap.max(0.0) * f64::from(generation)
    }

    /// Whether `job` is elastic under this plan. A pure seeded draw —
    /// order-independent and recomputable outside the engine.
    pub fn job_is_elastic(&self, job: u32) -> bool {
        self.elastic_active() && unit_draw(self.seed, 0xE1A5, job) < self.elastic_fraction
    }

    /// Whether `job` carries an SLO deadline under this plan. A pure
    /// seeded draw — order-independent and recomputable outside the
    /// engine.
    pub fn job_is_slo(&self, job: u32) -> bool {
        self.slo_active() && unit_draw(self.seed, 0x0510, job) < self.slo_fraction
    }

    /// Deadline of `spec` under this plan, or `None` when the job drew
    /// no SLO: `submit + slo_slack * solo_duration`.
    pub fn deadline_for(&self, spec: &JobSpec) -> Option<SimTime> {
        if !self.job_is_slo(spec.id.0) {
            return None;
        }
        let slack = SimDuration::from_secs_f64(self.slo_slack * spec.solo_duration().as_secs_f64());
        Some(spec.submit_time + slack)
    }
}

/// SplitMix64 finalizer — the pure hash behind per-job scenario draws.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[0, 1)` keyed by `(seed, stream, id)`.
fn unit_draw(seed: u64, stream: u64, id: u32) -> f64 {
    let z = splitmix64(seed ^ stream.rotate_left(32) ^ u64::from(id));
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Historical name of [`FaultPlan`].
pub type FaultConfig = FaultPlan;

/// Checkpoint/restore model: jobs periodically pay a checkpoint cost
/// and, on a *machine* fault, resume from the last durable point
/// (checkpoint or graceful stop) instead of keeping all progress.
/// Per-job injected faults keep progress — the process restarts on a
/// healthy machine and pays only the flat restart penalty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Wall-clock between checkpoints of a running group. `None`
    /// disables checkpointing: machine faults destroy all work since
    /// the job's last graceful stop.
    pub interval: Option<SimDuration>,
    /// Pause the whole group pays per checkpoint.
    pub cost: SimDuration,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval: None,
            cost: SimDuration::from_secs(30),
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Scheduler under test.
    pub scheduler: SchedulerConfig,
    /// Profiler (noise) configuration — what the scheduler *sees*.
    pub profiler: ProfilerConfig,
    /// Fault injection (per-job and machine-level).
    pub faults: FaultPlan,
    /// Checkpoint/restore model.
    #[serde(default)]
    pub checkpoint: CheckpointConfig,
    /// Execution overhead per extra interleaved group member: a group of
    /// `m` jobs runs `1 + o·(m−1)` slower than Eq. 3 predicts. Models the
    /// residual contention the paper cites for why 4-job groups don't
    /// reach 4× ("other resource types may still be used in this stage…
    /// resource contention between different stages decreases the
    /// processing speed", §6.2). Calibrated against Table 2: the measured
    /// aggregate normalized throughput of the ideal 4-way group is 2.00
    /// versus 2.18 predicted by Eq. 3 with our profiles — a 9% overhead
    /// for a 4-way group, i.e. 0.03 per extra member.
    pub interleave_overhead_per_job: f64,
    /// Execution overhead per extra co-located job for GPU-sharing
    /// without interleaving barriers (AntMan): larger, because stages
    /// collide instead of dovetailing.
    pub sharing_overhead_per_job: f64,
    /// Per-extra-machine penalty on the network (synchronization) stage
    /// of a group that spans machines: the stage scales by
    /// `1 + p·(machines − 1)`. Off by default (0.0) so the closed-form
    /// Eq. 3 calibration against Table 2 stays exact; enable to study
    /// placement sensitivity (the §5 node-minimizing placement exists to
    /// keep this penalty at zero).
    pub cross_machine_net_penalty: f64,
    /// Safety horizon: the run aborts (jobs left unfinished) past this.
    pub max_sim_time: SimDuration,
}

impl SimConfig {
    /// Paper-testbed defaults for a given scheduler.
    pub fn testbed(scheduler: SchedulerConfig) -> Self {
        SimConfig {
            cluster: ClusterSpec::paper_testbed(),
            scheduler,
            profiler: ProfilerConfig::exact(),
            faults: FaultPlan::default(),
            checkpoint: CheckpointConfig::default(),
            interleave_overhead_per_job: 0.03,
            sharing_overhead_per_job: 0.25,
            cross_machine_net_penalty: 0.0,
            max_sim_time: SimDuration::from_hours(24 * 365),
        }
    }

    /// Effective execution slowdown factor for a group of `m` jobs under
    /// this config ( ≥ 1 ).
    pub fn group_overhead(&self, m: usize, gpu_sharing: bool) -> f64 {
        if m <= 1 {
            return 1.0;
        }
        let per = if gpu_sharing {
            self.sharing_overhead_per_job
        } else {
            self.interleave_overhead_per_job
        };
        1.0 + per * (m as f64 - 1.0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use muri_core::PolicyKind;

    #[test]
    fn scenario_draws_are_pure_and_fraction_bounded() {
        let mut plan = FaultPlan {
            seed: 42,
            elastic_fraction: 1.0,
            elastic_interval: Some(SimDuration::from_secs(60)),
            slo_fraction: 0.5,
            ..FaultPlan::default()
        };
        assert!(plan.any_active());
        // fraction = 1 accepts every job; draws are repeatable.
        for id in 0..32 {
            assert!(plan.job_is_elastic(id));
            assert_eq!(plan.job_is_slo(id), plan.job_is_slo(id));
        }
        // Roughly half the jobs draw an SLO at fraction 0.5.
        let hits = (0..1000).filter(|&id| plan.job_is_slo(id)).count();
        assert!((300..=700).contains(&hits), "{hits}");
        plan.elastic_fraction = 0.0;
        plan.slo_fraction = 0.0;
        assert!(!plan.job_is_elastic(7));
        assert!(!plan.job_is_slo(7));
    }

    #[test]
    fn generations_partition_machines() {
        let plan = FaultPlan {
            gpu_generations: 3,
            generation_gap: 0.5,
            ..FaultPlan::default()
        };
        assert!(plan.hetero_active());
        assert_eq!(plan.generation_of(0), 0);
        assert_eq!(plan.generation_of(4), 1);
        assert_eq!(plan.generation_of(5), 2);
        assert!((plan.generation_factor(2) - 2.0).abs() < 1e-12);
        let flat = FaultPlan::default();
        assert_eq!(flat.generation_of(5), 0);
        assert!((flat.generation_factor(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deadlines_come_only_from_slo_draws() {
        use muri_workload::{JobId, ModelKind};
        let plan = FaultPlan {
            slo_fraction: 1.0,
            slo_slack: 2.0,
            ..FaultPlan::default()
        };
        let spec = JobSpec::new(JobId(3), ModelKind::ResNet18, 2, 50, SimTime::from_secs(10));
        let deadline = plan.deadline_for(&spec).expect("slo job has a deadline");
        assert!(deadline > spec.submit_time + spec.solo_duration());
        assert!(FaultPlan::default().deadline_for(&spec).is_none());
    }

    #[test]
    fn overhead_scales_with_group_size() {
        let cfg = SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriS));
        assert_eq!(cfg.group_overhead(1, false), 1.0);
        assert!((cfg.group_overhead(4, false) - 1.09).abs() < 1e-12);
        assert!(cfg.group_overhead(2, true) > cfg.group_overhead(2, false));
    }
}
