//! Simulation configuration.

use muri_cluster::{ClusterSpec, HealthPolicy};
use muri_core::SchedulerConfig;
use muri_workload::{ProfilerConfig, SimDuration};
use serde::{Deserialize, Serialize};

/// Fault-domain plan (§5: executors report faults to the worker monitor;
/// the job is terminated and pushed back to the queue). Beyond the
/// original per-job MTBF model this injects machine-level fail-stop and
/// transient faults — a machine fault cascades to every job and group
/// the machine hosts — and degraded machines that run every stage of
/// jobs placed on them slower.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Mean time between faults per running job (exponential). `None`
    /// disables per-job fault injection (the paper's evaluation runs
    /// fault-free).
    pub mtbf: Option<SimDuration>,
    /// RNG seed for all fault streams (per-job, machine, degradation).
    pub seed: u64,
    /// Mean time between machine-level faults, per machine
    /// (exponential). `None` disables machine faults.
    #[serde(default)]
    pub machine_mtbf: Option<SimDuration>,
    /// Mean time to repair a fail-stopped machine (exponential).
    #[serde(default)]
    pub machine_mttr: SimDuration,
    /// Fraction of machine faults that are transient (the machine stays
    /// up; only its jobs die). The rest are fail-stop.
    #[serde(default)]
    pub transient_fraction: f64,
    /// Number of machines that run degraded (chosen by seeded draw).
    #[serde(default)]
    pub degraded_machines: u32,
    /// Slowdown factor applied to every stage of jobs placed on a
    /// degraded machine.
    #[serde(default)]
    pub degraded_slowdown: f64,
    /// Worker-monitor health thresholds (blacklisting policy).
    #[serde(default)]
    pub health: HealthPolicy,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            mtbf: None,
            seed: 0,
            machine_mtbf: None,
            machine_mttr: SimDuration::from_secs(600),
            transient_fraction: 0.5,
            degraded_machines: 0,
            degraded_slowdown: 1.5,
            health: HealthPolicy::default(),
        }
    }
}

impl FaultPlan {
    /// True when machine-health tracking matters: machine faults or
    /// degraded machines are in play, so the engine feeds the monitor
    /// and syncs blacklists into placement.
    pub fn health_active(&self) -> bool {
        self.machine_mtbf.is_some() || self.degraded_machines > 0
    }

    /// True when any fault feature is enabled.
    pub fn any_active(&self) -> bool {
        self.mtbf.is_some() || self.health_active()
    }
}

/// Historical name of [`FaultPlan`].
pub type FaultConfig = FaultPlan;

/// Checkpoint/restore model: jobs periodically pay a checkpoint cost
/// and, on a *machine* fault, resume from the last durable point
/// (checkpoint or graceful stop) instead of keeping all progress.
/// Per-job injected faults keep progress — the process restarts on a
/// healthy machine and pays only the flat restart penalty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointConfig {
    /// Wall-clock between checkpoints of a running group. `None`
    /// disables checkpointing: machine faults destroy all work since
    /// the job's last graceful stop.
    pub interval: Option<SimDuration>,
    /// Pause the whole group pays per checkpoint.
    pub cost: SimDuration,
}

impl Default for CheckpointConfig {
    fn default() -> Self {
        CheckpointConfig {
            interval: None,
            cost: SimDuration::from_secs(30),
        }
    }
}

/// Full configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cluster hardware.
    pub cluster: ClusterSpec,
    /// Scheduler under test.
    pub scheduler: SchedulerConfig,
    /// Profiler (noise) configuration — what the scheduler *sees*.
    pub profiler: ProfilerConfig,
    /// Fault injection (per-job and machine-level).
    pub faults: FaultPlan,
    /// Checkpoint/restore model.
    #[serde(default)]
    pub checkpoint: CheckpointConfig,
    /// Execution overhead per extra interleaved group member: a group of
    /// `m` jobs runs `1 + o·(m−1)` slower than Eq. 3 predicts. Models the
    /// residual contention the paper cites for why 4-job groups don't
    /// reach 4× ("other resource types may still be used in this stage…
    /// resource contention between different stages decreases the
    /// processing speed", §6.2). Calibrated against Table 2: the measured
    /// aggregate normalized throughput of the ideal 4-way group is 2.00
    /// versus 2.18 predicted by Eq. 3 with our profiles — a 9% overhead
    /// for a 4-way group, i.e. 0.03 per extra member.
    pub interleave_overhead_per_job: f64,
    /// Execution overhead per extra co-located job for GPU-sharing
    /// without interleaving barriers (AntMan): larger, because stages
    /// collide instead of dovetailing.
    pub sharing_overhead_per_job: f64,
    /// Per-extra-machine penalty on the network (synchronization) stage
    /// of a group that spans machines: the stage scales by
    /// `1 + p·(machines − 1)`. Off by default (0.0) so the closed-form
    /// Eq. 3 calibration against Table 2 stays exact; enable to study
    /// placement sensitivity (the §5 node-minimizing placement exists to
    /// keep this penalty at zero).
    pub cross_machine_net_penalty: f64,
    /// Safety horizon: the run aborts (jobs left unfinished) past this.
    pub max_sim_time: SimDuration,
}

impl SimConfig {
    /// Paper-testbed defaults for a given scheduler.
    pub fn testbed(scheduler: SchedulerConfig) -> Self {
        SimConfig {
            cluster: ClusterSpec::paper_testbed(),
            scheduler,
            profiler: ProfilerConfig::exact(),
            faults: FaultPlan::default(),
            checkpoint: CheckpointConfig::default(),
            interleave_overhead_per_job: 0.03,
            sharing_overhead_per_job: 0.25,
            cross_machine_net_penalty: 0.0,
            max_sim_time: SimDuration::from_hours(24 * 365),
        }
    }

    /// Effective execution slowdown factor for a group of `m` jobs under
    /// this config ( ≥ 1 ).
    pub fn group_overhead(&self, m: usize, gpu_sharing: bool) -> f64 {
        if m <= 1 {
            return 1.0;
        }
        let per = if gpu_sharing {
            self.sharing_overhead_per_job
        } else {
            self.interleave_overhead_per_job
        };
        1.0 + per * (m as f64 - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use muri_core::PolicyKind;

    #[test]
    fn overhead_scales_with_group_size() {
        let cfg = SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriS));
        assert_eq!(cfg.group_overhead(1, false), 1.0);
        assert!((cfg.group_overhead(4, false) - 1.09).abs() < 1e-12);
        assert!(cfg.group_overhead(2, true) > cfg.group_overhead(2, false));
    }
}
