//! The discrete-event cluster simulator.
//!
//! Faithful to the paper's setup (§5, §6.1):
//!
//! * the scheduler runs at a fixed interval (six simulated minutes) and is
//!   additionally marked dirty by job arrivals, completions, and faults —
//!   clean ticks are skipped;
//! * preemptive policies terminate and restart jobs at ticks (charging a
//!   restart penalty), but groups whose membership a new plan keeps intact
//!   continue running untouched;
//! * freed GPUs are backfilled immediately on group completion with a
//!   non-preemptive planning pass;
//! * the *scheduler* sees only the profiler's (possibly noisy) stage
//!   profiles; *execution* speed comes from the ground-truth profiles —
//!   exactly how profiling noise degrades Muri in Fig. 14;
//! * group execution follows Eq. 3 under the configured ordering policy,
//!   scaled by the contention overhead model;
//! * fault domains (§5): beyond per-job MTBF faults (process crashes
//!   that keep progress behind a flat restart penalty), machines fail
//!   (fail-stop with exponential repair, or transient) and cascade to
//!   every group they host; machine faults destroy device state, so
//!   jobs roll back to their last checkpoint (`CheckpointConfig`), the
//!   worker monitor blacklists machines with consecutive faults or
//!   straggler behavior, and placement avoids down/blacklisted machines
//!   until they recover.

use crate::config::SimConfig;
use crate::metrics::{JobRecord, SeriesSample, SimReport};
use muri_cluster::{
    Cluster, FaultKind, FaultReport, GpuId, GpuSet, JobProgress, UtilizationSnapshot, WorkerMonitor,
};
use muri_core::{plan_schedule_with, PendingJob, PlannedGroup};
use muri_interleave::{choose_ordering, GroupMember, InterleaveGroup};
use muri_telemetry::{Event, TelemetrySink};
use muri_workload::{
    JobId, JobSpec, Profiler, ResourceKind, ResourceVec, SimDuration, SimTime, StageProfile, Trace,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Simulate `trace` under `cfg` and return the full report.
///
/// ```
/// use muri_core::{PolicyKind, SchedulerConfig};
/// use muri_sim::{simulate, SimConfig};
/// use muri_workload::{philly_like_trace};
///
/// let trace = philly_like_trace(1, 0.02); // 20-job slice of trace 1
/// let cfg = SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriL));
/// let report = simulate(&trace, &cfg);
/// assert!(report.all_finished());
/// assert!(report.avg_jct_secs() > 0.0);
/// ```
pub fn simulate(trace: &Trace, cfg: &SimConfig) -> SimReport {
    Engine::new(trace, cfg).run()
}

/// Simulate `trace` like [`simulate`], streaming scheduler, lifecycle,
/// and worker-monitor telemetry into `sink`.
///
/// With a disabled sink this is byte-for-byte [`simulate`]: every
/// instrumentation site is a single branch, no event payloads are built,
/// and no host clocks are read. With an enabled sink the run additionally
/// produces the event journal, the metrics registry, and the Chrome
/// trace lanes — without perturbing the simulated schedule (telemetry
/// never feeds back into planning).
pub fn simulate_with_telemetry(trace: &Trace, cfg: &SimConfig, sink: &TelemetrySink) -> SimReport {
    let mut engine = Engine::new(trace, cfg);
    engine.sink = sink.clone();
    engine.monitor.set_sink(sink.clone());
    engine.run()
}

/// Simulate `trace` like [`simulate`], auditing the engine state against
/// the `muri-verify` invariants after every scheduling pass, and return
/// the combined audit report next to the simulation report. Violations
/// are collected, not panicked on — this is what `muri verify` runs.
#[cfg(feature = "audit")]
pub fn simulate_audited(trace: &Trace, cfg: &SimConfig) -> (SimReport, muri_verify::AuditReport) {
    let mut engine = Engine::new(trace, cfg);
    engine.audit = Some(muri_verify::AuditReport::new());
    engine.drive();
    let audit = engine.audit.take().unwrap_or_default();
    (engine.finalize(), audit)
}

#[derive(Debug, Clone)]
struct JobState {
    spec: JobSpec,
    measured: StageProfile,
    truth: StageProfile,
    done_iters: u64,
    /// Durable progress: iterations persisted by the last checkpoint (or
    /// a graceful stop). A fault rolls `done_iters` back to this.
    saved_iters: u64,
    attained: SimDuration,
    first_start: Option<SimTime>,
    finish: Option<SimTime>,
    restarts: u32,
    faults: u32,
}

impl JobState {
    fn remaining_iters(&self) -> u64 {
        self.spec.iterations.saturating_sub(self.done_iters)
    }

    /// Remaining solo running time — what duration-aware policies rank by.
    fn remaining_solo(&self) -> SimDuration {
        self.truth.iteration_time() * self.remaining_iters()
    }

    fn as_pending(&self) -> PendingJob {
        PendingJob {
            id: self.spec.id,
            num_gpus: self.spec.num_gpus,
            profile: self.measured,
            submit_time: self.spec.submit_time,
            attained: self.attained,
            remaining: self.remaining_solo(),
        }
    }
}

#[derive(Debug, Clone)]
struct RunningGroup {
    version: u64,
    gpus: GpuSet,
    members: Vec<JobId>,
    /// Execution per-iteration time (truth + overhead).
    iter_time: SimDuration,
    /// Iteration counting anchor (start of the not-yet-counted iteration).
    anchor: SimTime,
    /// Last time attained-service was accumulated up to.
    last_touch: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    Arrival(u32),
    Completion { gid: u32, version: u64 },
    Fault { gid: u32, version: u64, job: JobId },
    Checkpoint { gid: u32, version: u64 },
    MachineFail(u32),
    MachineRecover(u32),
    Tick,
}

struct Engine<'a> {
    cfg: &'a SimConfig,
    trace: &'a Trace,
    cluster: Cluster,
    profiler: Profiler,
    jobs: BTreeMap<JobId, JobState>,
    queue: Vec<JobId>,
    groups: Vec<Option<RunningGroup>>,
    events: BinaryHeap<Reverse<(SimTime, u64, Ev)>>,
    seq: u64,
    /// Monotone group-version counter, shared across group slots so a
    /// reused slot can never alias a stale event's `(gid, version)` key
    /// onto its new occupant.
    next_version: u64,
    now: SimTime,
    dirty: bool,
    next_tick: Option<SimTime>,
    arrivals_left: usize,
    fault_rng: SmallRng,
    /// Machine fail/repair draws — a stream separate from `fault_rng` so
    /// enabling one fault feature doesn't shift the other's schedule.
    machine_rng: SmallRng,
    /// `degraded[m]` — machine `m` runs every stage of hosted jobs slower
    /// by `faults.degraded_slowdown`.
    degraded: Vec<bool>,
    series: Vec<SeriesSample>,
    passes: u64,
    nevents: u64,
    /// Telemetry sink — disabled (a single `None` branch per site) unless
    /// the run came through [`simulate_with_telemetry`].
    sink: TelemetrySink,
    /// The worker monitor (§3): fed utilization samples and fault reports
    /// only when telemetry is on; forwards both into `sink`.
    monitor: WorkerMonitor,
    /// `Some` when collecting an audit trail (`simulate_audited`); `None`
    /// means debug builds assert on violations instead.
    #[cfg(feature = "audit")]
    audit: Option<muri_verify::AuditReport>,
    /// Previous recovery snapshot — `audit_recovery` checks pass-to-pass
    /// deltas (no job lost/duplicated, progress monotone).
    #[cfg(feature = "audit")]
    prev_recovery: Option<muri_verify::RecoverySnapshot>,
}

/// Exponential gap with the given mean: `-mean · ln(u)`, `u ∈ [ε, 1)`.
fn exp_gap(rng: &mut SmallRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

impl<'a> Engine<'a> {
    fn new(trace: &'a Trace, cfg: &'a SimConfig) -> Self {
        let machines = cfg.cluster.machines as usize;
        let mut degraded = vec![false; machines];
        if cfg.faults.degraded_machines > 0 {
            // Seeded draw of distinct degraded machines, on a stream of
            // its own so it doesn't perturb fault times.
            let mut rng = SmallRng::seed_from_u64(cfg.faults.seed ^ 0xDE6A);
            let want = (cfg.faults.degraded_machines as usize).min(machines);
            let mut chosen = 0usize;
            while chosen < want {
                let m = rng.gen_range(0..machines);
                if !degraded[m] {
                    degraded[m] = true;
                    chosen += 1;
                }
            }
        }
        let mut engine = Engine {
            cfg,
            trace,
            cluster: Cluster::new(cfg.cluster),
            profiler: Profiler::new(cfg.profiler),
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            groups: Vec::new(),
            events: BinaryHeap::new(),
            seq: 0,
            next_version: 0,
            now: SimTime::ZERO,
            dirty: false,
            next_tick: None,
            arrivals_left: trace.len(),
            fault_rng: SmallRng::seed_from_u64(cfg.faults.seed ^ 0xFA17),
            machine_rng: SmallRng::seed_from_u64(cfg.faults.seed ^ 0x3AC1),
            degraded,
            series: Vec::new(),
            passes: 0,
            nevents: 0,
            sink: TelemetrySink::disabled(),
            monitor: WorkerMonitor::with_policy(cfg.faults.health),
            #[cfg(feature = "audit")]
            audit: None,
            #[cfg(feature = "audit")]
            prev_recovery: None,
        };
        for (i, job) in trace.jobs.iter().enumerate() {
            engine.schedule_at(job.submit_time, Ev::Arrival(i as u32));
        }
        if let Some(mtbf) = cfg.faults.machine_mtbf {
            for m in 0..cfg.cluster.machines {
                let gap = exp_gap(&mut engine.machine_rng, mtbf);
                engine.schedule_at(SimTime::ZERO + gap, Ev::MachineFail(m));
            }
        }
        engine
    }

    fn schedule_at(&mut self, at: SimTime, ev: Ev) {
        self.seq += 1;
        self.events.push(Reverse((at, self.seq, ev)));
    }

    fn run(mut self) -> SimReport {
        self.drive();
        self.finalize()
    }

    /// Pump the event loop to completion (or the simulation deadline).
    fn drive(&mut self) {
        let deadline = SimTime::ZERO + self.cfg.max_sim_time;
        while let Some(Reverse((at, _, ev))) = self.events.pop() {
            if at > deadline {
                break;
            }
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.nevents += 1;
            match ev {
                Ev::Arrival(idx) => self.on_arrival(idx as usize),
                Ev::Completion { gid, version } => self.on_completion(gid as usize, version),
                Ev::Fault { gid, version, job } => self.on_fault(gid as usize, version, job),
                Ev::Checkpoint { gid, version } => self.on_checkpoint(gid as usize, version),
                Ev::MachineFail(m) => self.on_machine_fail(m),
                Ev::MachineRecover(m) => self.on_machine_recover(m),
                Ev::Tick => self.on_tick(),
            }
        }
    }

    // ------------------------------------------------------------- events

    fn on_arrival(&mut self, idx: usize) {
        let spec = self.trace.jobs[idx];
        self.arrivals_left -= 1;
        let now = self.now;
        self.sink.emit(|| Event::JobArrived {
            time: now,
            job: spec.id,
            num_gpus: spec.num_gpus,
        });
        if spec.num_gpus > self.cluster.spec().total_gpus() {
            // Can never be placed; record as rejected (never finishes).
            self.jobs.insert(
                spec.id,
                JobState {
                    spec,
                    measured: StageProfile::default(),
                    truth: spec.true_profile(),
                    done_iters: 0,
                    saved_iters: 0,
                    attained: SimDuration::ZERO,
                    first_start: None,
                    finish: None,
                    restarts: 0,
                    faults: 0,
                },
            );
            return;
        }
        let measured = self.profiler.measure(&spec);
        self.jobs.insert(
            spec.id,
            JobState {
                spec,
                measured,
                truth: spec.true_profile(),
                done_iters: 0,
                saved_iters: 0,
                attained: SimDuration::ZERO,
                first_start: None,
                finish: None,
                restarts: 0,
                faults: 0,
            },
        );
        self.queue.push(spec.id);
        self.dirty = true;
        // The scheduler "is periodically invoked on events like job
        // arrival" (§3): backfill free GPUs right away; preemption still
        // waits for the tick.
        self.fill_pass();
        self.ensure_tick();
    }

    fn on_completion(&mut self, gid: usize, version: u64) {
        if !self.group_version_matches(gid, version) {
            return;
        }
        self.advance_and_reap(gid);
        if self.group_version_matches(gid, version) {
            // Premature wakeup: a checkpoint pushed the anchor past the
            // time this completion was scheduled for. Re-aim at the (now
            // later) completion instant; the version is unchanged, so no
            // duplicate chain starts.
            if !self.groups[gid]
                .as_ref()
                .is_some_and(|g| g.iter_time.is_zero())
            {
                self.schedule_completion(gid);
            }
        }
        if self.dirty {
            // Capacity was freed (or membership changed): backfill
            // immediately without preempting anyone.
            self.fill_pass();
        }
    }

    fn on_fault(&mut self, gid: usize, version: u64, job: JobId) {
        if !self.group_version_matches(gid, version) {
            return;
        }
        self.advance_and_reap(gid);
        // The job may have completed exactly at the fault boundary (in
        // which case the reap above re-formed or released the group and
        // bumped the version).
        let still_running = self.groups[gid]
            .as_ref()
            .is_some_and(|g| g.members.contains(&job));
        if !still_running {
            if self.dirty {
                self.fill_pass();
            }
            return;
        }
        // Group-aware recovery (§5): the faulted member is terminated
        // and restarted; the survivors cannot keep the interleave cycle
        // going around the hole, so they are gracefully stopped —
        // progress and attained service intact — and requeued for the
        // next pass to regroup.
        let Some(group) = self.groups[gid].take() else {
            return;
        };
        self.cluster.release(&group.gpus);
        let now = self.now;
        for m in group.members {
            if m == job {
                self.fault_job(m, FaultKind::Injected, None);
            } else {
                // advance_and_reap left only unfinished members behind.
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.saved_iters = j.done_iters;
                }
                self.queue.push(m);
                self.sink.emit(|| Event::JobPreempted { time: now, job: m });
            }
        }
        self.dirty = true;
        self.fill_pass();
    }

    /// Terminate a running job under a fault, route the report through
    /// the worker monitor (§5), and requeue the job.
    ///
    /// Machine-level faults destroy device state: progress rolls back to
    /// the last durable point (checkpoint or graceful stop) and the lost
    /// work is accounted. Per-job injected faults model a process crash
    /// whose state survives on the still-healthy machine, so the job
    /// resumes where it stopped and pays only the flat restart penalty.
    fn fault_job(&mut self, job: JobId, kind: FaultKind, machine: Option<u32>) {
        let now = self.now;
        let mut lost = 0u64;
        let mut wasted = SimDuration::ZERO;
        if let Some(j) = self.jobs.get_mut(&job) {
            if kind.is_machine() {
                lost = j.done_iters.saturating_sub(j.saved_iters);
                wasted = j.truth.iteration_time() * lost;
                j.done_iters = j.saved_iters;
            } else {
                j.saved_iters = j.done_iters;
            }
            j.faults += 1;
        }
        if lost > 0 {
            self.sink.emit(|| Event::WorkLost {
                time: now,
                job,
                iterations: lost,
                wasted,
            });
        }
        // Always routed (not sink-gated): the report feeds machine
        // health, which feeds placement — behavior must be identical
        // with telemetry on or off.
        self.monitor.report_fault(FaultReport {
            job,
            time: now,
            kind,
            machine,
        });
        self.queue.push(job);
    }

    fn on_checkpoint(&mut self, gid: usize, version: u64) {
        if !self.group_version_matches(gid, version) {
            return;
        }
        self.advance_and_reap(gid);
        // A reap that changed membership bumped the version and started
        // a fresh checkpoint chain — this stale chain ends here.
        if !self.group_version_matches(gid, version) {
            if self.dirty {
                self.fill_pass();
            }
            return;
        }
        let Some(interval) = self.cfg.checkpoint.interval else {
            return;
        };
        let cost = self.cfg.checkpoint.cost;
        let now = self.now;
        let members = match self.groups[gid].as_mut() {
            Some(group) => {
                // The whole group pauses while its members persist
                // state: iteration progress is pushed out by the cost
                // (attained service keeps accruing — the GPUs stay
                // held), which is the checkpoint overhead the lost-work
                // trade-off pays for.
                group.anchor += cost;
                group.members.clone()
            }
            None => return,
        };
        for job in members {
            let Some(j) = self.jobs.get_mut(&job) else {
                continue;
            };
            j.saved_iters = j.done_iters;
            let iters_saved = j.saved_iters;
            self.sink.emit(|| Event::CheckpointTaken {
                time: now,
                job,
                iters_saved,
            });
        }
        self.schedule_at(
            self.now + interval,
            Ev::Checkpoint {
                gid: gid as u32,
                version,
            },
        );
        if self.dirty {
            self.fill_pass();
        }
    }

    fn on_machine_fail(&mut self, m: u32) {
        let Some(mtbf) = self.cfg.faults.machine_mtbf else {
            return;
        };
        if self.done() {
            // Drain stale machine events without re-arming, so the run
            // terminates once the workload does.
            return;
        }
        let transient = self.machine_rng.gen_range(0.0..1.0) < self.cfg.faults.transient_fraction;
        let kind = if transient {
            FaultKind::MachineTransient
        } else {
            FaultKind::MachineFailStop
        };
        // Cascade: every group with a GPU on machine `m` loses all its
        // members — the interleave cycle cannot survive a hole.
        let mut jobs_hit = 0u32;
        for gid in 0..self.groups.len() {
            let hit = self.groups[gid].as_ref().is_some_and(|g| {
                g.gpus
                    .gpus
                    .iter()
                    .any(|&gpu| self.cluster.spec().machine_of(gpu) == m)
            });
            if !hit {
                continue;
            }
            // Settle attained service and whole iterations up to the
            // crash instant before rolling anyone back.
            self.advance_only(gid);
            let Some(group) = self.groups[gid].take() else {
                continue;
            };
            self.cluster.release(&group.gpus);
            let now = self.now;
            for job in group.members {
                if self.jobs[&job].remaining_iters() == 0 {
                    // Finished exactly at the fault instant — the
                    // completion stands.
                    if let Some(j) = self.jobs.get_mut(&job) {
                        j.finish = Some(now);
                    }
                    self.sink.emit(|| Event::JobCompleted { time: now, job });
                    self.monitor.forget_job(job);
                } else {
                    self.fault_job(job, kind, Some(m));
                    jobs_hit += 1;
                }
            }
        }
        let now = self.now;
        self.sink.emit(|| Event::MachineFailed {
            time: now,
            machine: m,
            transient,
            jobs_hit,
        });
        // One health strike per machine failure (not one per victim).
        self.monitor.record_machine_fault(m, now);
        if transient {
            let gap = exp_gap(&mut self.machine_rng, mtbf);
            self.schedule_at(self.now + gap, Ev::MachineFail(m));
        } else {
            self.cluster.set_down(m, true);
            let repair = exp_gap(&mut self.machine_rng, self.cfg.faults.machine_mttr);
            self.schedule_at(self.now + repair, Ev::MachineRecover(m));
        }
        self.sync_banned();
        self.dirty = true;
        self.fill_pass();
    }

    fn on_machine_recover(&mut self, m: u32) {
        let Some(mtbf) = self.cfg.faults.machine_mtbf else {
            return;
        };
        self.cluster.set_down(m, false);
        let now = self.now;
        self.sink.emit(|| Event::MachineRecovered {
            time: now,
            machine: m,
        });
        if self.done() {
            return;
        }
        let gap = exp_gap(&mut self.machine_rng, mtbf);
        self.schedule_at(self.now + gap, Ev::MachineFail(m));
        self.dirty = true;
        self.fill_pass();
    }

    fn on_tick(&mut self) {
        self.next_tick = None;
        // Settle every group's progress before planning.
        for gid in 0..self.groups.len() {
            if self.groups[gid].is_some() {
                self.advance_and_reap(gid);
            }
        }
        // Blacklist expiry is purely time-based (no event fires), so the
        // tick refreshes the placement mask; a changed mask is freed (or
        // newly lost) capacity and must replan.
        if self.sync_banned() {
            self.dirty = true;
        }
        // Replan when anything changed — or when packed groups coexist
        // with idle GPUs (capacity freed since the groups formed, so
        // spreading the members back out would speed them up).
        let could_spread = self.cfg.scheduler.policy.preemptive()
            && self.cluster.free_gpus() > 0
            && self.groups.iter().flatten().any(|g| g.members.len() > 1);
        if self.dirty || could_spread {
            self.planning_pass();
            self.dirty = false;
        }
        self.sample();
        self.ensure_tick();
    }

    fn ensure_tick(&mut self) {
        if self.next_tick.is_some() || self.done() {
            return;
        }
        let at = self.now + self.cfg.scheduler.interval;
        self.next_tick = Some(at);
        self.schedule_at(at, Ev::Tick);
    }

    fn done(&self) -> bool {
        self.arrivals_left == 0 && self.queue.is_empty() && self.groups.iter().all(Option::is_none)
    }

    // ------------------------------------------------------- group motion

    fn group_version_matches(&self, gid: usize, version: u64) -> bool {
        self.groups
            .get(gid)
            .and_then(Option::as_ref)
            .is_some_and(|g| g.version == version)
    }

    /// Account elapsed time to a group: attained service, whole iterations
    /// completed, and member completion. Re-forms or releases the group as
    /// members finish.
    fn advance_and_reap(&mut self, gid: usize) {
        let Some(group) = self.groups[gid].as_mut() else {
            return;
        };
        let now = self.now;
        // Attained wall time (includes the restart-penalty window: the
        // job occupies its GPUs during restore too).
        if now > group.last_touch {
            let dt = now.since(group.last_touch);
            group.last_touch = now;
            for &m in &group.members {
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.attained += dt;
                }
            }
        }
        // Whole iterations since the anchor.
        if now > group.anchor && !group.iter_time.is_zero() {
            let whole = now.since(group.anchor).as_micros() / group.iter_time.as_micros();
            if whole > 0 {
                group.anchor += group.iter_time * whole;
                for &m in &group.members {
                    let Some(j) = self.jobs.get_mut(&m) else {
                        continue;
                    };
                    j.done_iters = (j.done_iters + whole).min(j.spec.iterations);
                }
            }
        }
        // Reap finished members.
        let members = group.members.clone();
        let finished: Vec<JobId> = members
            .iter()
            .copied()
            .filter(|m| self.jobs[m].remaining_iters() == 0)
            .collect();
        if finished.is_empty() {
            return;
        }
        for m in &finished {
            if let Some(j) = self.jobs.get_mut(m) {
                j.finish = Some(now);
            }
            self.sink
                .emit(|| Event::JobCompleted { time: now, job: *m });
            self.monitor.forget_job(*m);
        }
        if self.cfg.faults.health_active() {
            // Completions are healthy progress: clear the hosting
            // machines' consecutive-fault streaks.
            for m in self.machines_of_group(gid) {
                self.monitor.record_machine_ok(m);
            }
        }
        let survivors: Vec<JobId> = members
            .into_iter()
            .filter(|m| !finished.contains(m))
            .collect();
        self.dirty = true;
        self.reform_group(gid, survivors);
    }

    /// Distinct machines spanned by a group's lease, ascending.
    fn machines_of_group(&self, gid: usize) -> Vec<u32> {
        let mut ms: Vec<u32> = self.groups[gid]
            .as_ref()
            .map(|g| {
                g.gpus
                    .gpus
                    .iter()
                    .map(|&gpu| self.cluster.spec().machine_of(gpu))
                    .collect()
            })
            .unwrap_or_default();
        ms.sort_unstable();
        ms.dedup();
        ms
    }

    /// Mirror the monitor's current blacklist into the cluster's
    /// placement mask (no-op when machine-health tracking is off).
    /// Returns `true` when the mask changed — a blacklist expiry frees
    /// capacity without raising an event, so the caller must replan.
    fn sync_banned(&mut self) -> bool {
        if !self.cfg.faults.health_active() {
            return false;
        }
        let banned = self.monitor.blacklisted_machines(self.now);
        let mut changed = false;
        for m in 0..self.cfg.cluster.machines {
            let ban = banned.binary_search(&m).is_ok();
            if self.cluster.is_banned(m) != ban {
                self.cluster.set_banned(m, ban);
                changed = true;
            }
        }
        changed
    }

    /// Replace a group's membership (possibly empty → release GPUs),
    /// recompute execution speed, and schedule the next completion.
    fn reform_group(&mut self, gid: usize, members: Vec<JobId>) {
        self.next_version += 1;
        let version = self.next_version;
        let Some(group) = self.groups[gid].as_mut() else {
            return;
        };
        if members.is_empty() {
            let gpus = group.gpus.clone();
            self.groups[gid] = None;
            self.cluster.release(&gpus);
            return;
        }
        group.members = members;
        group.version = version;
        group.anchor = self.now;
        group.last_touch = self.now;
        let member_ids = group.members.clone();
        let gpu_list = group.gpus.gpus.clone();
        let iter_time = self.execution_iteration_time(&member_ids, &gpu_list);
        if let Some(group) = self.groups[gid].as_mut() {
            group.iter_time = iter_time;
        }
        self.schedule_completion(gid);
        self.schedule_checkpoint(gid);
    }

    /// Realized group iteration time. The scheduler *plans* (chooses the
    /// stage ordering) from the profiler's measured profiles, but the plan
    /// *executes* against the true profiles — this is exactly how noisy
    /// profiling hurts Muri in Fig. 14: a bad measurement picks a bad
    /// ordering, and reality pays for it. Stages the plan did not
    /// schedule at all (measured as zero but truly nonzero) cannot
    /// overlap anything and serialize on top.
    fn execution_iteration_time(&self, members: &[JobId], gpus: &[GpuId]) -> SimDuration {
        let machines_spanned = self.cluster.spec().machines_spanned(gpus);
        let measured: Vec<StageProfile> = members.iter().map(|m| self.jobs[m].measured).collect();
        let net_factor =
            1.0 + self.cfg.cross_machine_net_penalty * machines_spanned.saturating_sub(1) as f64;
        let truths: Vec<StageProfile> = members
            .iter()
            .map(|m| {
                let t = self.jobs[m].truth;
                if net_factor > 1.0 {
                    t.scale_stage(ResourceKind::Network, net_factor)
                } else {
                    t
                }
            })
            .collect();
        let ordering = choose_ordering(&measured, self.cfg.scheduler.grouping.ordering);
        let mut t = muri_interleave::efficiency::group_iteration_time_on_cycle(
            &truths,
            &ordering.offsets,
            &ordering.cycle,
        );
        for truth in &truths {
            for r in ResourceKind::ALL {
                if !ordering.cycle.contains(&r) {
                    t += truth.duration(r);
                }
            }
        }
        let mut factor = self
            .cfg
            .group_overhead(truths.len(), self.cfg.scheduler.policy.gpu_shares());
        if gpus
            .iter()
            .any(|&g| self.degraded[self.cluster.spec().machine_of(g) as usize])
        {
            // A degraded machine slows every stage of everything placed
            // on it, and the interleave cycle stalls with its slowest
            // participant.
            factor *= self.cfg.faults.degraded_slowdown;
        }
        t.scale(factor)
    }

    fn schedule_completion(&mut self, gid: usize) {
        let Some(group) = self.groups[gid].as_ref() else {
            return;
        };
        let Some(min_rem) = group
            .members
            .iter()
            .map(|m| self.jobs[m].remaining_iters())
            .min()
        else {
            return;
        };
        let at = if group.iter_time.is_zero() {
            group.anchor
        } else {
            group.anchor + group.iter_time * min_rem
        };
        let ev = Ev::Completion {
            gid: gid as u32,
            version: group.version,
        };
        self.schedule_at(at.max(self.now), ev);
    }

    /// Arm the group's checkpoint chain. One chain runs per group
    /// version; a stale chain dies at the handler's version guard.
    fn schedule_checkpoint(&mut self, gid: usize) {
        let Some(interval) = self.cfg.checkpoint.interval else {
            return;
        };
        let Some(version) = self.groups[gid].as_ref().map(|g| g.version) else {
            return;
        };
        self.schedule_at(
            self.now + interval,
            Ev::Checkpoint {
                gid: gid as u32,
                version,
            },
        );
    }

    // ---------------------------------------------------------- planning

    /// Full (possibly preemptive) planning pass at a tick.
    fn planning_pass(&mut self) {
        self.passes += 1;
        self.sync_banned();
        let preemptive = self.cfg.scheduler.policy.preemptive();
        let mut candidates: Vec<PendingJob> = self
            .queue
            .iter()
            .map(|id| self.jobs[id].as_pending())
            .collect();
        let capacity = if preemptive {
            for g in self.groups.iter().flatten() {
                for m in &g.members {
                    candidates.push(self.jobs[m].as_pending());
                }
            }
            // Plan only against machines that can host placements —
            // conservative when kept groups still sit on newly-banned
            // machines (their capacity is simply not re-offered).
            self.cluster.available_gpus()
        } else {
            self.cluster.free_gpus()
        };
        let plan = plan_schedule_with(
            &self.cfg.scheduler,
            &candidates,
            capacity,
            self.now,
            &self.sink,
        );
        if std::env::var_os("MURI_SIM_DEBUG").is_some() {
            let planned_gpus: u32 = plan.iter().map(|p| p.num_gpus).sum();
            let planned_jobs: usize = plan.iter().map(|p| p.group.len()).sum();
            let demand: u32 = candidates.iter().map(|c| c.num_gpus).sum();
            eprintln!(
                "[plan @{}] candidates={} demand={} capacity={} -> groups={} jobs={} gpus={}",
                self.now,
                candidates.len(),
                demand,
                capacity,
                plan.len(),
                planned_jobs,
                planned_gpus
            );
        }

        // Index planned groups by member set.
        let mut planned: Vec<(Vec<JobId>, PlannedGroup)> = plan
            .into_iter()
            .map(|p| {
                let mut ids = p.group.job_ids();
                ids.sort_unstable();
                (ids, p)
            })
            .collect();

        if preemptive {
            // Keep running groups whose membership is unchanged.
            for gid in 0..self.groups.len() {
                let Some(g) = self.groups[gid].as_ref() else {
                    continue;
                };
                let mut ids = g.members.clone();
                ids.sort_unstable();
                if let Some(pos) = planned.iter().position(|(p_ids, _)| *p_ids == ids) {
                    planned.swap_remove(pos);
                } else {
                    self.teardown_group(gid);
                }
            }
        }
        // Start remaining planned groups (placement in plan order —
        // descending GPU count).
        planned.sort_by(|a, b| {
            b.1.num_gpus
                .cmp(&a.1.num_gpus)
                .then_with(|| a.1.group.members[0].job.0.cmp(&b.1.group.members[0].job.0))
        });
        for (ids, p) in planned {
            self.start_group(ids, p.num_gpus);
        }
        self.audit_pass();
    }

    /// Non-preemptive backfill of free GPUs (on completions/faults).
    fn fill_pass(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        self.passes += 1;
        self.sync_banned();
        let candidates: Vec<PendingJob> = self
            .queue
            .iter()
            .map(|id| self.jobs[id].as_pending())
            .collect();
        let free = self.cluster.free_gpus();
        if free > 0 {
            let plan =
                plan_schedule_with(&self.cfg.scheduler, &candidates, free, self.now, &self.sink);
            for p in plan {
                let mut ids = p.group.job_ids();
                ids.sort_unstable();
                self.start_group(ids, p.num_gpus);
            }
        }
        if self.cfg.scheduler.policy.gpu_shares() {
            self.antman_join_pass();
        }
        self.audit_pass();
    }

    /// AntMan's opportunistic sharing: when no GPUs are free, queued jobs
    /// may join a running group of the same GPU count that still has a
    /// resident slot (`antman_max_per_gpu`), in FIFO order. The joiners
    /// run degraded (the sharing-overhead model) but start immediately —
    /// AntMan's makespan advantage in Fig. 10 comes from exactly this.
    fn antman_join_pass(&mut self) {
        let cap = self.cfg.scheduler.antman_max_per_gpu.max(1);
        // FIFO order over the queue.
        let mut queued: Vec<JobId> = self.queue.clone();
        queued.sort_by_key(|id| (self.jobs[id].spec.submit_time, *id));
        for job in queued {
            let num_gpus = self.jobs[&job].spec.num_gpus;
            let host = self.groups.iter().position(|g| {
                g.as_ref().is_some_and(|g| {
                    g.gpus.len() == num_gpus as usize
                        && g.members.len() < cap
                        && g.gpus.gpus.iter().all(|&gpu| {
                            self.cluster
                                .machine_available(self.cluster.spec().machine_of(gpu))
                        })
                })
            });
            let Some(gid) = host else {
                continue;
            };
            self.advance_and_reap(gid);
            let Some(group) = self.groups[gid].as_ref() else {
                continue;
            };
            if group.members.len() >= cap {
                continue;
            }
            self.queue.retain(|id| *id != job);
            let now = self.now;
            if let Some(j) = self.jobs.get_mut(&job) {
                let restart = j.first_start.is_some();
                if restart {
                    j.restarts += 1;
                } else {
                    j.first_start = Some(self.now);
                }
                self.sink.emit(|| Event::JobStarted {
                    time: now,
                    job,
                    restart,
                });
            }
            let mut members = group.members.clone();
            members.push(job);
            self.reform_group(gid, members);
        }
    }

    /// Terminate a running group: members go back to the queue with their
    /// progress; GPUs are freed. (Partial iterations are lost — the cost
    /// of preemption beyond the restart penalty.)
    fn teardown_group(&mut self, gid: usize) {
        self.advance_only(gid);
        let Some(group) = self.groups[gid].take() else {
            return;
        };
        self.cluster.release(&group.gpus);
        let now = self.now;
        for m in group.members {
            if self.jobs[&m].remaining_iters() == 0 {
                // Completed exactly at the tick boundary.
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.finish = Some(self.now);
                }
                self.sink.emit(|| Event::JobCompleted { time: now, job: m });
                self.monitor.forget_job(m);
            } else {
                // Graceful stop: progress persists across the preemption
                // (the restart penalty models the save/restore cost).
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.saved_iters = j.done_iters;
                }
                self.queue.push(m);
                self.sink.emit(|| Event::JobPreempted { time: now, job: m });
            }
        }
    }

    /// Advance without reaping (used by teardown, which handles members
    /// itself).
    fn advance_only(&mut self, gid: usize) {
        let Some(group) = self.groups[gid].as_mut() else {
            return;
        };
        let now = self.now;
        if now > group.last_touch {
            let dt = now.since(group.last_touch);
            group.last_touch = now;
            for &m in &group.members {
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.attained += dt;
                }
            }
        }
        if now > group.anchor && !group.iter_time.is_zero() {
            let whole = now.since(group.anchor).as_micros() / group.iter_time.as_micros();
            if whole > 0 {
                group.anchor += group.iter_time * whole;
                for &m in &group.members {
                    let Some(j) = self.jobs.get_mut(&m) else {
                        continue;
                    };
                    j.done_iters = (j.done_iters + whole).min(j.spec.iterations);
                }
            }
        }
    }

    fn start_group(&mut self, ids: Vec<JobId>, num_gpus: u32) {
        debug_assert!(!ids.is_empty());
        let Some(gpus) = self.cluster.allocate(num_gpus) else {
            // Capacity raced away (shouldn't happen — plans respect
            // capacity); leave the jobs queued.
            return;
        };
        // Remove members from the queue.
        self.queue.retain(|id| !ids.contains(id));
        let penalty = self.cfg.scheduler.restart_penalty;
        let now = self.now;
        for id in &ids {
            let Some(j) = self.jobs.get_mut(id) else {
                continue;
            };
            let restart = j.first_start.is_some();
            if restart {
                j.restarts += 1;
            } else {
                j.first_start = Some(self.now);
            }
            self.sink.emit(|| Event::JobStarted {
                time: now,
                job: *id,
                restart,
            });
        }
        let iter_time = self.execution_iteration_time(&ids, &gpus.gpus);
        let gid = self
            .groups
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.groups.push(None);
                self.groups.len() - 1
            });
        self.next_version += 1;
        self.groups[gid] = Some(RunningGroup {
            version: self.next_version,
            gpus,
            members: ids.clone(),
            iter_time,
            anchor: self.now + penalty,
            last_touch: self.now,
        });
        self.schedule_completion(gid);
        self.schedule_checkpoint(gid);
        self.maybe_schedule_fault(gid, &ids);
        if self.cfg.faults.health_active() {
            // The monitor compares each hosting machine's realized stage
            // rate against the plan; degraded machines read as
            // stragglers, on-pace machines clear their strikes.
            for m in self.machines_of_group(gid) {
                let ratio = if self.degraded[m as usize] {
                    self.cfg.faults.degraded_slowdown
                } else {
                    1.0
                };
                self.monitor.observe_machine_rate(m, self.now, ratio);
            }
            self.sync_banned();
        }
        if self.sink.is_enabled() {
            // Trace the group's interleaving lanes over its first two
            // iterations (the renderer clips the window to that anyway).
            // Lanes show the *planned* schedule — the measured profiles
            // under the chosen ordering — which is what the scheduler
            // believed it was building (Fig. 4-style timelines).
            let members: Vec<GroupMember> = ids
                .iter()
                .map(|&job| GroupMember {
                    job,
                    profile: self.jobs[&job].measured,
                })
                .collect();
            let group = InterleaveGroup::form(members, self.cfg.scheduler.grouping.ordering);
            let start = now + penalty;
            let end = start + iter_time * 2;
            self.sink
                .with(|t| t.record_group_timeline(&group, num_gpus, start, end));
        }
    }

    fn maybe_schedule_fault(&mut self, gid: usize, ids: &[JobId]) {
        let Some(mtbf) = self.cfg.faults.mtbf else {
            return;
        };
        let Some(version) = self.groups[gid].as_ref().map(|g| g.version) else {
            return;
        };
        for &job in ids {
            let u: f64 = self.fault_rng.gen_range(f64::EPSILON..1.0);
            let dt = SimDuration::from_secs_f64(-mtbf.as_secs_f64() * u.ln());
            let ev = Ev::Fault {
                gid: gid as u32,
                version,
                job,
            };
            self.schedule_at(self.now + dt, ev);
        }
    }

    // ---------------------------------------------------------- auditing

    /// Snapshot the engine state for the invariant auditor.
    #[cfg(feature = "audit")]
    fn tick_snapshot(&self) -> muri_verify::TickSnapshot {
        let total_gpus = self.cluster.spec().total_gpus();
        let mut finished = Vec::new();
        let mut rejected = Vec::new();
        for j in self.jobs.values() {
            if j.spec.num_gpus > total_gpus {
                rejected.push(j.spec.id);
            } else if j.finish.is_some() {
                finished.push(j.spec.id);
            }
        }
        muri_verify::TickSnapshot {
            time: self.now,
            total_gpus,
            running: self
                .groups
                .iter()
                .flatten()
                .map(|g| muri_verify::GroupSnapshot {
                    members: g.members.clone(),
                    gpus: g.gpus.gpus.clone(),
                })
                .collect(),
            queued: self.queue.clone(),
            finished,
            rejected,
            arrived: self.jobs.keys().copied().collect(),
        }
    }

    /// Snapshot the fault/recovery-relevant state for `audit_recovery`.
    #[cfg(feature = "audit")]
    fn recovery_snapshot(&self) -> muri_verify::RecoverySnapshot {
        let spec = self.cluster.spec();
        let total_gpus = spec.total_gpus();
        let down = (0..spec.machines)
            .filter(|&m| self.cluster.is_down(m))
            .collect();
        // The monitor's view (with expiry instants), not the cluster
        // mask: the mask is only refreshed at planning passes and ticks,
        // and the expiry is what lets the auditor distinguish a ban that
        // spanned the window from one that lapsed and was re-issued.
        let blacklisted = self
            .monitor
            .blacklisted_with_expiry(self.now)
            .into_iter()
            .map(|(m, until)| (m, until.as_micros()))
            .collect();
        let mut finished = Vec::new();
        let mut attained_us = Vec::new();
        let mut saved_iters = Vec::new();
        let mut done_iters = Vec::new();
        for j in self.jobs.values() {
            if j.spec.num_gpus > total_gpus {
                continue; // rejected at submission; never tracked
            }
            if j.finish.is_some() {
                finished.push(j.spec.id);
            }
            attained_us.push((j.spec.id, j.attained.as_micros()));
            saved_iters.push((j.spec.id, j.saved_iters));
            done_iters.push((j.spec.id, j.done_iters));
        }
        finished.sort_unstable();
        attained_us.sort_unstable();
        saved_iters.sort_unstable();
        done_iters.sort_unstable();
        muri_verify::RecoverySnapshot {
            time: self.now,
            gpus_per_machine: spec.machine.gpus,
            down,
            blacklisted,
            running: self
                .groups
                .iter()
                .flatten()
                .map(|g| muri_verify::GroupSnapshot {
                    members: g.members.clone(),
                    gpus: g.gpus.gpus.clone(),
                })
                .collect(),
            queued: self.queue.clone(),
            finished,
            attained_us,
            saved_iters,
            done_iters,
        }
    }

    /// Audit hook, run after every scheduling pass. When collecting
    /// (`simulate_audited`) violations accumulate in the report;
    /// otherwise debug builds abort on the first violation.
    #[cfg(feature = "audit")]
    fn audit_pass(&mut self) {
        if self.audit.is_none() && !cfg!(debug_assertions) {
            return;
        }
        let snap = self.tick_snapshot();
        let mut report = muri_verify::audit_tick(&snap);
        let rec = self.recovery_snapshot();
        report.merge(muri_verify::audit_recovery(
            self.prev_recovery.as_ref(),
            &rec,
        ));
        self.prev_recovery = Some(rec);
        match self.audit.as_mut() {
            Some(acc) => acc.merge(report),
            None => debug_assert!(
                report.is_clean(),
                "engine state violates invariants at t={}:\n{report}",
                snap.time
            ),
        }
    }

    /// No-op without the `audit` feature.
    #[cfg(not(feature = "audit"))]
    fn audit_pass(&mut self) {}

    // ---------------------------------------------------------- sampling

    fn sample(&mut self) {
        let total_gpus = f64::from(self.cluster.spec().total_gpus());
        let mut util = ResourceVec::splat(0.0);
        let mut running_jobs = 0usize;
        for g in self.groups.iter().flatten() {
            running_jobs += g.members.len();
            let t = g.iter_time.as_secs_f64();
            if t == 0.0 {
                continue;
            }
            for r in ResourceKind::ALL {
                let busy: f64 = g
                    .members
                    .iter()
                    .map(|m| self.jobs[m].truth.duration(r).as_secs_f64())
                    .sum();
                util[r] += (busy / t).min(1.0) * g.gpus.len() as f64 / total_gpus;
            }
        }
        let blocking: Vec<f64> = self
            .queue
            .iter()
            .filter_map(|id| {
                let j = &self.jobs[id];
                let pending = self
                    .now
                    .since(j.spec.submit_time)
                    .saturating_sub(j.attained);
                let rem = j.remaining_solo().as_secs_f64();
                (rem > 0.0).then(|| pending.as_secs_f64() / rem)
            })
            .collect();
        if self.sink.is_enabled() {
            self.monitor.record_utilization(UtilizationSnapshot {
                time: self.now,
                util,
            });
            // Executor progress reports for every running member (the
            // monitor prunes these as jobs finish).
            for g in self.groups.iter().flatten() {
                for &m in &g.members {
                    let j = &self.jobs[&m];
                    self.monitor.record_progress(
                        m,
                        JobProgress {
                            completed_iterations: j.done_iters,
                            total_iterations: j.spec.iterations,
                            avg_iteration: Some(g.iter_time),
                        },
                    );
                }
            }
        }
        self.series.push(SeriesSample {
            time: self.now,
            queue_length: self.queue.len(),
            blocking_index: muri_workload::stats::mean(&blocking),
            utilization: util,
            running_jobs,
            used_gpus: self.cluster.used_gpus(),
        });
    }

    fn finalize(self) -> SimReport {
        let mut records: Vec<JobRecord> = self
            .trace
            .jobs
            .iter()
            .filter_map(|spec| self.jobs.get(&spec.id))
            .map(|j| JobRecord {
                id: j.spec.id,
                model: j.spec.model,
                num_gpus: j.spec.num_gpus,
                submit: j.spec.submit_time,
                first_start: j.first_start,
                finish: j.finish,
                attained: j.attained,
                iterations_done: j.done_iters,
                iterations_total: j.spec.iterations,
                restarts: j.restarts,
                faults: j.faults,
            })
            .collect();
        records.sort_by_key(|r| (r.submit, r.id));
        let makespan = records
            .iter()
            .filter_map(|r| r.finish)
            .max()
            .map_or(SimDuration::ZERO, |t| t.since(SimTime::ZERO));
        SimReport {
            policy: self.cfg.scheduler.policy.name().to_string(),
            trace: self.trace.name.clone(),
            records,
            series: self.series,
            makespan,
            scheduling_passes: self.passes,
            events: self.nevents,
        }
    }
}
