//! The scheduler core and the discrete-event cluster simulator built on it.
//!
//! Faithful to the paper's setup (§5, §6.1):
//!
//! * the scheduler runs at a fixed interval (six simulated minutes) and is
//!   additionally marked dirty by job arrivals, completions, and faults —
//!   clean ticks are skipped;
//! * preemptive policies terminate and restart jobs at ticks (charging a
//!   restart penalty), but groups whose membership a new plan keeps intact
//!   continue running untouched;
//! * freed GPUs are backfilled immediately on group completion with a
//!   non-preemptive planning pass;
//! * the *scheduler* sees only the profiler's (possibly noisy) stage
//!   profiles; *execution* speed comes from the ground-truth profiles —
//!   exactly how profiling noise degrades Muri in Fig. 14;
//! * group execution follows Eq. 3 under the configured ordering policy,
//!   scaled by the contention overhead model;
//! * fault domains (§5): beyond per-job MTBF faults (process crashes
//!   that keep progress behind a flat restart penalty), machines fail
//!   (fail-stop with exponential repair, or transient) and cascade to
//!   every group they host; machine faults destroy device state, so
//!   jobs roll back to their last checkpoint (`CheckpointConfig`), the
//!   worker monitor blacklists machines with consecutive faults or
//!   straggler behavior, and placement avoids down/blacklisted machines
//!   until they recover.
//!
//! Since the event-core extraction, the scheduler state machine lives in
//! [`EngineCore`], which implements `muri_engine::EventHandler` and is
//! agnostic to where events come from. The batch entry points
//! ([`simulate`] and friends) are thin harnesses that pump a
//! `VirtualClockQueue` through it; the `muri-serve` daemon drives the
//! same core from a wire listener, using the live API
//! ([`EngineCore::submit`], [`EngineCore::cancel`],
//! [`EngineCore::advance_to`], [`EngineCore::checkpoint_all`]).

use crate::config::SimConfig;
use crate::metrics::{JobRecord, SeriesSample, SimReport};
use muri_cluster::{
    Cluster, FaultKind, FaultReport, GpuId, GpuSet, JobProgress, UtilizationSnapshot, WorkerMonitor,
};
use muri_core::{
    plan_incremental_with, plan_schedule_with, IncrementalPlanner, IncrementalStats, PendingJob,
    PlanMode, PlannedGroup,
};
use muri_engine::{EventHandler, EventQueue, SchedulerEvent, VirtualClockQueue};
use muri_interleave::{choose_ordering, GroupMember, InterleaveGroup};
use muri_telemetry::{Event, TelemetrySink};
use muri_workload::{
    JobId, JobSpec, Profiler, ResourceKind, ResourceVec, SimDuration, SimTime, StageProfile, Trace,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::collections::{BTreeMap, BTreeSet};

/// Simulate `trace` under `cfg` and return the full report.
///
/// ```
/// use muri_core::{PolicyKind, SchedulerConfig};
/// use muri_sim::{simulate, SimConfig};
/// use muri_workload::{philly_like_trace};
///
/// let trace = philly_like_trace(1, 0.02); // 20-job slice of trace 1
/// let cfg = SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriL));
/// let report = simulate(&trace, &cfg);
/// assert!(report.all_finished());
/// assert!(report.avg_jct_secs() > 0.0);
/// ```
pub fn simulate(trace: &Trace, cfg: &SimConfig) -> SimReport {
    let mut q = VirtualClockQueue::new();
    let core = EngineCore::from_trace(trace, cfg, &mut q);
    core.run(&mut q)
}

/// Simulate `trace` like [`simulate`], streaming scheduler, lifecycle,
/// and worker-monitor telemetry into `sink`.
///
/// With a disabled sink this is byte-for-byte [`simulate`]: every
/// instrumentation site is a single branch, no event payloads are built,
/// and no host clocks are read. With an enabled sink the run additionally
/// produces the event journal, the metrics registry, and the Chrome
/// trace lanes — without perturbing the simulated schedule (telemetry
/// never feeds back into planning).
pub fn simulate_with_telemetry(trace: &Trace, cfg: &SimConfig, sink: &TelemetrySink) -> SimReport {
    let mut q = VirtualClockQueue::new();
    let mut core = EngineCore::from_trace(trace, cfg, &mut q);
    core.set_telemetry(sink.clone());
    core.run(&mut q)
}

/// Simulate `trace` like [`simulate`], auditing the engine state against
/// the `muri-verify` invariants after every scheduling pass, and return
/// the combined audit report next to the simulation report. Violations
/// are collected, not panicked on — this is what `muri verify` runs.
#[cfg(feature = "audit")]
pub fn simulate_audited(trace: &Trace, cfg: &SimConfig) -> (SimReport, muri_verify::AuditReport) {
    let mut q = VirtualClockQueue::new();
    let mut core = EngineCore::from_trace(trace, cfg, &mut q);
    core.audit = Some(muri_verify::AuditReport::new());
    core.drive(&mut q);
    let audit = core.audit.take().unwrap_or_default();
    (core.finalize(), audit)
}

#[derive(Debug, Clone)]
struct JobState {
    spec: JobSpec,
    measured: StageProfile,
    truth: StageProfile,
    done_iters: u64,
    /// Durable progress: iterations persisted by the last checkpoint (or
    /// a graceful stop). A fault rolls `done_iters` back to this.
    saved_iters: u64,
    attained: SimDuration,
    first_start: Option<SimTime>,
    finish: Option<SimTime>,
    restarts: u32,
    faults: u32,
    /// SLO deadline, if the job drew one (`FaultPlan::deadline_for`).
    deadline: Option<SimTime>,
    /// Current elastic-resize epoch; a queued `ElasticResize` event with
    /// a stale epoch is dropped.
    resize_epoch: u64,
}

impl JobState {
    fn remaining_iters(&self) -> u64 {
        self.spec.iterations.saturating_sub(self.done_iters)
    }

    /// Remaining solo running time — what duration-aware policies rank by.
    fn remaining_solo(&self) -> SimDuration {
        self.truth.iteration_time() * self.remaining_iters()
    }

    fn as_pending(&self) -> PendingJob {
        PendingJob {
            id: self.spec.id,
            num_gpus: self.spec.num_gpus,
            profile: self.measured,
            submit_time: self.spec.submit_time,
            attained: self.attained,
            remaining: self.remaining_solo(),
            deadline: self.deadline,
        }
    }
}

#[derive(Debug, Clone)]
struct RunningGroup {
    version: u64,
    gpus: GpuSet,
    members: Vec<JobId>,
    /// Execution per-iteration time (truth + overhead).
    iter_time: SimDuration,
    /// Iteration counting anchor (start of the not-yet-counted iteration).
    anchor: SimTime,
    /// Last time attained-service was accumulated up to.
    last_touch: SimTime,
}

/// Where a job is in its lifecycle, as reported by
/// [`EngineCore::job_status`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobPhase {
    /// Submitted and waiting for GPUs.
    Queued,
    /// Running inside an interleave group.
    Running,
    /// Completed all iterations.
    Finished,
    /// Demands more GPUs than the cluster has — never placeable.
    Rejected,
    /// Cancelled via [`EngineCore::cancel`].
    Cancelled,
}

impl JobPhase {
    /// The snake_case wire name (the daemon's status endpoint).
    #[must_use]
    pub fn wire_name(self) -> &'static str {
        match self {
            JobPhase::Queued => "queued",
            JobPhase::Running => "running",
            JobPhase::Finished => "finished",
            JobPhase::Rejected => "rejected",
            JobPhase::Cancelled => "cancelled",
        }
    }
}

impl Serialize for JobPhase {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.wire_name().to_string())
    }
}

/// Point-in-time status of one job (the daemon's status endpoint).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct JobStatus {
    /// Lifecycle phase.
    pub phase: JobPhase,
    /// GPUs the job demands.
    pub num_gpus: u32,
    /// Iterations completed.
    pub iterations_done: u64,
    /// Total iterations requested.
    pub iterations_total: u64,
    /// Submission time.
    pub submit: SimTime,
    /// First placement time, if any.
    pub first_start: Option<SimTime>,
    /// Completion time, if finished.
    pub finish: Option<SimTime>,
    /// Times the job was restarted (preemption or faults).
    pub restarts: u32,
    /// Faults the job suffered.
    pub faults: u32,
}

/// One running interleave group, as exposed by
/// [`EngineCore::cluster_state`].
#[derive(Debug, Clone, Serialize)]
pub struct GroupState {
    /// Member jobs, in group order.
    pub members: Vec<JobId>,
    /// GPUs the group's lease holds.
    pub num_gpus: u32,
}

/// Aggregate scheduler/cluster state (the daemon's cluster endpoint).
#[derive(Debug, Clone, Serialize)]
pub struct ClusterState {
    /// Current scheduler time.
    pub now: SimTime,
    /// Total GPUs in the cluster.
    pub total_gpus: u32,
    /// GPUs currently leased to groups.
    pub used_gpus: u32,
    /// GPUs free for placement.
    pub free_gpus: u32,
    /// Jobs waiting in the queue.
    pub queued_jobs: usize,
    /// Running interleave groups.
    pub groups: Vec<GroupState>,
    /// Scheduling passes executed so far.
    pub scheduling_passes: u64,
    /// Events processed so far.
    pub events: u64,
}

/// The scheduler core: cluster, queue, running groups, fault machinery,
/// and every event handler — independent of the event source.
///
/// Both harnesses drive it through `muri_engine`: the batch simulator
/// constructs it with [`EngineCore::from_trace`] and pumps a
/// `VirtualClockQueue` to completion ([`EngineCore::drive`]); the
/// `muri-serve` daemon constructs it with [`EngineCore::new_live`] and
/// interleaves [`EngineCore::submit`] / [`EngineCore::cancel`] with
/// bounded [`EngineCore::advance_to`] steps.
pub struct EngineCore {
    cfg: SimConfig,
    /// Job specs by submission index (trace order for batch runs). The
    /// payload of `SchedulerEvent::JobSubmitted` indexes into this.
    specs: Vec<JobSpec>,
    trace_name: String,
    cluster: Cluster,
    profiler: Profiler,
    jobs: BTreeMap<JobId, JobState>,
    queue: Vec<JobId>,
    groups: Vec<Option<RunningGroup>>,
    /// Monotone group-version counter, shared across group slots so a
    /// reused slot can never alias a stale event's `(gid, version)` key
    /// onto its new occupant.
    next_version: u64,
    now: SimTime,
    dirty: bool,
    next_tick: Option<SimTime>,
    arrivals_left: usize,
    fault_rng: SmallRng,
    /// Machine fail/repair draws — a stream separate from `fault_rng` so
    /// enabling one fault feature doesn't shift the other's schedule.
    machine_rng: SmallRng,
    /// `degraded[m]` — machine `m` runs every stage of hosted jobs slower
    /// by `faults.degraded_slowdown`.
    degraded: Vec<bool>,
    /// `spot[m]` — machine `m` is spot/preemptible (seeded draw).
    spot: Vec<bool>,
    /// When the pending spot warning fired, per machine (`None` when no
    /// eviction is in flight or the eviction came without warning).
    spot_warned: Vec<Option<SimTime>>,
    /// Jobs drained to a checkpoint at the pending warning, per machine.
    spot_drained: Vec<u64>,
    /// Spot eviction draws — a stream of its own so enabling spot
    /// machines doesn't shift per-job or machine fault schedules.
    spot_rng: SmallRng,
    /// Elastic resize-gap draws — likewise an independent stream.
    elastic_rng: SmallRng,
    /// Per-machine stage-speed factor ≥ 1: GPU-generation slowdown ×
    /// degradation. All ones on a homogeneous, healthy cluster.
    speed: Vec<f64>,
    series: Vec<SeriesSample>,
    passes: u64,
    nevents: u64,
    /// Jobs cancelled through the live API. Kept out of `JobRecord` (the
    /// golden report fixtures pin that shape); a cancelled job simply
    /// never finishes.
    cancelled: BTreeSet<JobId>,
    /// How backfill passes plan: full re-plan (fixture-pinned default)
    /// or dirty-class incremental with certified fallback.
    plan_mode: PlanMode,
    /// Dirty-class bookkeeping for [`PlanMode::Incremental`].
    inc: IncrementalPlanner,
    /// Telemetry sink — disabled (a single `None` branch per site) unless
    /// installed via [`EngineCore::set_telemetry`].
    sink: TelemetrySink,
    /// The worker monitor (§3): fed utilization samples and fault reports
    /// only when telemetry is on; forwards both into `sink`.
    monitor: WorkerMonitor,
    /// `Some` when collecting an audit trail (`simulate_audited`); `None`
    /// means debug builds assert on violations instead.
    #[cfg(feature = "audit")]
    audit: Option<muri_verify::AuditReport>,
    /// Previous recovery snapshot — `audit_recovery` checks pass-to-pass
    /// deltas (no job lost/duplicated, progress monotone).
    #[cfg(feature = "audit")]
    prev_recovery: Option<muri_verify::RecoverySnapshot>,
    /// Spot evictions since the last audit pass (`audit_spot`).
    #[cfg(feature = "audit")]
    spot_records: Vec<muri_verify::SpotEvictionRecord>,
    /// Elastic resizes since the last audit pass (`audit_elastic`).
    #[cfg(feature = "audit")]
    elastic_records: Vec<muri_verify::ElasticResizeRecord>,
    /// Queued SLO jobs' priority keys at the previous audit pass —
    /// `audit_slo_escalation` checks keys only escalate as slack burns.
    #[cfg(feature = "audit")]
    prev_slo: Vec<muri_verify::SloKeyRecord>,
}

/// Exponential gap with the given mean: `-mean · ln(u)`, `u ∈ [ε, 1)`.
fn exp_gap(rng: &mut SmallRng, mean: SimDuration) -> SimDuration {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
}

/// Largest power of two ≤ `n` (0 for 0) — elastic resizes stay on
/// power-of-two GPU counts within the cluster.
fn prev_power_of_two(n: u32) -> u32 {
    if n == 0 {
        0
    } else {
        1 << (31 - n.leading_zeros())
    }
}

impl EventHandler for EngineCore {
    fn handle(&mut self, at: SimTime, ev: SchedulerEvent, q: &mut dyn EventQueue) {
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.nevents += 1;
        match ev {
            SchedulerEvent::JobSubmitted(idx) => self.on_arrival(idx as usize, q),
            SchedulerEvent::JobCompleted { gid, version } => {
                self.on_completion(gid as usize, version, q);
            }
            SchedulerEvent::JobFault { gid, version, job } => {
                self.on_fault(gid as usize, version, job, q);
            }
            SchedulerEvent::CheckpointDue { gid, version } => {
                self.on_checkpoint(gid as usize, version, q);
            }
            SchedulerEvent::MachineFailed(m) => self.on_machine_fail(m, q),
            SchedulerEvent::MachineRecovered(m) => self.on_machine_recover(m, q),
            SchedulerEvent::PlanRequested => self.on_tick(q),
            SchedulerEvent::SpotWarning(m) => self.on_spot_warning(m, q),
            SchedulerEvent::SpotEvicted(m) => self.on_spot_evict(m, q),
            SchedulerEvent::SpotRestored(m) => self.on_spot_restore(m, q),
            SchedulerEvent::ElasticResize { job, epoch } => {
                self.on_elastic_resize(job, epoch, q);
            }
        }
    }
}

impl EngineCore {
    fn empty(cfg: &SimConfig, trace_name: String, arrivals_left: usize) -> Self {
        let machines = cfg.cluster.machines as usize;
        let mut degraded = vec![false; machines];
        if cfg.faults.degraded_machines > 0 {
            // Seeded draw of distinct degraded machines, on a stream of
            // its own so it doesn't perturb fault times.
            let mut rng = SmallRng::seed_from_u64(cfg.faults.seed ^ 0xDE6A);
            let want = (cfg.faults.degraded_machines as usize).min(machines);
            let mut chosen = 0usize;
            while chosen < want {
                let m = rng.gen_range(0..machines);
                if !degraded[m] {
                    degraded[m] = true;
                    chosen += 1;
                }
            }
        }
        let mut spot = vec![false; machines];
        if cfg.faults.spot_machines > 0 {
            // Same distinct-draw scheme as degradation, on yet another
            // stream — spot membership never perturbs other schedules.
            let mut rng = SmallRng::seed_from_u64(cfg.faults.seed ^ 0x5907);
            let want = (cfg.faults.spot_machines as usize).min(machines);
            let mut chosen = 0usize;
            while chosen < want {
                let m = rng.gen_range(0..machines);
                if !spot[m] {
                    spot[m] = true;
                    chosen += 1;
                }
            }
        }
        let mut cluster = Cluster::new(cfg.cluster);
        if cfg.faults.hetero_active() {
            cluster.set_generations(
                (0..cfg.cluster.machines)
                    .map(|m| cfg.faults.generation_of(m))
                    .collect(),
            );
        }
        let speed: Vec<f64> = (0..machines)
            .map(|m| {
                let gen = cfg
                    .faults
                    .generation_factor(cfg.faults.generation_of(m as u32));
                if degraded[m] {
                    gen * cfg.faults.degraded_slowdown
                } else {
                    gen
                }
            })
            .collect();
        EngineCore {
            cfg: *cfg,
            specs: Vec::new(),
            trace_name,
            cluster,
            profiler: Profiler::new(cfg.profiler),
            jobs: BTreeMap::new(),
            queue: Vec::new(),
            groups: Vec::new(),
            next_version: 0,
            now: SimTime::ZERO,
            dirty: false,
            next_tick: None,
            arrivals_left,
            fault_rng: SmallRng::seed_from_u64(cfg.faults.seed ^ 0xFA17),
            machine_rng: SmallRng::seed_from_u64(cfg.faults.seed ^ 0x3AC1),
            degraded,
            spot,
            spot_warned: vec![None; machines],
            spot_drained: vec![0; machines],
            spot_rng: SmallRng::seed_from_u64(cfg.faults.seed ^ 0x5B07),
            elastic_rng: SmallRng::seed_from_u64(cfg.faults.seed ^ 0xE7A5),
            speed,
            series: Vec::new(),
            passes: 0,
            nevents: 0,
            cancelled: BTreeSet::new(),
            plan_mode: PlanMode::Full,
            inc: IncrementalPlanner::new(),
            sink: TelemetrySink::disabled(),
            monitor: WorkerMonitor::with_policy(cfg.faults.health),
            #[cfg(feature = "audit")]
            audit: None,
            #[cfg(feature = "audit")]
            prev_recovery: None,
            #[cfg(feature = "audit")]
            spot_records: Vec::new(),
            #[cfg(feature = "audit")]
            elastic_records: Vec::new(),
            #[cfg(feature = "audit")]
            prev_slo: Vec::new(),
        }
    }

    /// Build a core pre-loaded with a whole trace: every submission and
    /// (if configured) every machine-fault arming event is scheduled
    /// into `q` up front, in the order the batch simulator always used.
    pub fn from_trace(trace: &Trace, cfg: &SimConfig, q: &mut dyn EventQueue) -> Self {
        let mut core = EngineCore::empty(cfg, trace.name.clone(), trace.len());
        core.specs.extend(trace.jobs.iter().copied());
        for (i, job) in trace.jobs.iter().enumerate() {
            q.schedule(job.submit_time, SchedulerEvent::JobSubmitted(i as u32));
        }
        core.arm_machine_faults(q);
        core.arm_spot(q);
        core
    }

    /// Build an empty live core (no pre-loaded submissions — jobs come
    /// in through [`EngineCore::submit`]). Machine faults and spot
    /// eviction cycles, if the config enables them, are armed
    /// immediately.
    pub fn new_live(cfg: &SimConfig, name: impl Into<String>, q: &mut dyn EventQueue) -> Self {
        let mut core = EngineCore::empty(cfg, name.into(), 0);
        core.arm_machine_faults(q);
        core.arm_spot(q);
        core
    }

    fn arm_machine_faults(&mut self, q: &mut dyn EventQueue) {
        if let Some(mtbf) = self.cfg.faults.machine_mtbf {
            for m in 0..self.cfg.cluster.machines {
                let gap = exp_gap(&mut self.machine_rng, mtbf);
                q.schedule(SimTime::ZERO + gap, SchedulerEvent::MachineFailed(m));
            }
        }
    }

    /// Arm the first eviction cycle of every spot machine.
    fn arm_spot(&mut self, q: &mut dyn EventQueue) {
        if !self.cfg.faults.spot_active() {
            return;
        }
        for m in 0..self.cfg.cluster.machines {
            if self.spot[m as usize] {
                self.arm_spot_cycle(m, q);
            }
        }
    }

    /// Schedule one eviction cycle of spot machine `m`: exactly one RNG
    /// draw per cycle, so the eviction schedule is identical whether the
    /// warning window is zero or not (what the drained-vs-lost
    /// comparison relies on). With a warning, the warning fires at the
    /// drawn instant and the eviction exactly one window later.
    fn arm_spot_cycle(&mut self, m: u32, q: &mut dyn EventQueue) {
        let Some(mtbe) = self.cfg.faults.spot_mtbe else {
            return;
        };
        let gap = exp_gap(&mut self.spot_rng, mtbe);
        let at = self.now + gap;
        let warning = self.cfg.faults.spot_warning;
        if warning.is_zero() {
            q.schedule(at, SchedulerEvent::SpotEvicted(m));
        } else {
            q.schedule(at, SchedulerEvent::SpotWarning(m));
            q.schedule(at + warning, SchedulerEvent::SpotEvicted(m));
        }
    }

    fn run(mut self, q: &mut dyn EventQueue) -> SimReport {
        self.drive(q);
        self.finalize()
    }

    /// Pump the event loop to completion (or the simulation deadline).
    pub fn drive(&mut self, q: &mut dyn EventQueue) {
        let deadline = SimTime::ZERO + self.cfg.max_sim_time;
        muri_engine::drive(q, deadline, self);
    }

    /// Process every event due at or before `deadline`, then advance
    /// the clock to `deadline`. Unlike [`EngineCore::drive`], future
    /// events stay queued — this is the live harness's stepping
    /// primitive, called as wall time (mapped to scheduler time)
    /// passes.
    pub fn advance_to(&mut self, deadline: SimTime, q: &mut dyn EventQueue) {
        muri_engine::drive_due(q, deadline, self);
        if deadline > self.now {
            self.now = deadline;
        }
    }

    // --------------------------------------------------------- live API

    /// Submit one job. The submission surfaces as a `JobSubmitted`
    /// event no earlier than the core's current time.
    pub fn submit(&mut self, spec: JobSpec, q: &mut dyn EventQueue) {
        let idx = self.specs.len() as u32;
        self.specs.push(spec);
        self.arrivals_left += 1;
        let at = spec.submit_time.max(self.now);
        q.schedule(at, SchedulerEvent::JobSubmitted(idx));
    }

    /// Cancel a job. Queued jobs leave the queue; a running job's group
    /// continues with the surviving members (or releases its GPUs when
    /// it empties). Returns `false` for unknown, finished, or
    /// already-cancelled jobs.
    pub fn cancel(&mut self, id: JobId, q: &mut dyn EventQueue) -> bool {
        if self.cancelled.contains(&id) {
            return false;
        }
        if let Some(pos) = self.queue.iter().position(|&j| j == id) {
            self.queue.remove(pos);
            self.cancelled.insert(id);
            self.monitor.forget_job(id);
            return true;
        }
        if let Some(gid) = self
            .groups
            .iter()
            .position(|g| g.as_ref().is_some_and(|g| g.members.contains(&id)))
        {
            // Settle progress first: the job may complete exactly at
            // the cancellation boundary, in which case the completion
            // stands and there is nothing left to cancel.
            self.advance_and_reap(gid, q);
            let still_running = self.groups[gid]
                .as_ref()
                .is_some_and(|g| g.members.contains(&id));
            if !still_running {
                if self.dirty {
                    self.fill_pass(q);
                }
                return false;
            }
            let survivors: Vec<JobId> = self.groups[gid]
                .as_ref()
                .map(|g| g.members.iter().copied().filter(|&m| m != id).collect())
                .unwrap_or_default();
            self.cancelled.insert(id);
            self.monitor.forget_job(id);
            self.reform_group(gid, survivors, q);
            self.dirty = true;
            self.inc.mark_all();
            self.fill_pass(q);
            return true;
        }
        // Submitted but not yet arrived: swallow the pending arrival.
        if self.specs.iter().any(|s| s.id == id) && !self.jobs.contains_key(&id) {
            self.cancelled.insert(id);
            return true;
        }
        false
    }

    /// Checkpoint every running group *now*: progress is settled up to
    /// the current instant and every member's durable progress is
    /// advanced to it. The graceful-shutdown path — a daemon restart
    /// resumes from here instead of the last periodic checkpoint.
    pub fn checkpoint_all(&mut self) {
        for gid in 0..self.groups.len() {
            self.advance_only(gid);
            let Some(group) = self.groups[gid].as_ref() else {
                continue;
            };
            let members = group.members.clone();
            let now = self.now;
            for job in members {
                let Some(j) = self.jobs.get_mut(&job) else {
                    continue;
                };
                j.saved_iters = j.done_iters;
                let iters_saved = j.saved_iters;
                self.sink.emit(|| Event::CheckpointTaken {
                    time: now,
                    job,
                    iters_saved,
                });
            }
        }
    }

    /// Install a telemetry sink (journal/metrics/Chrome-trace) on the
    /// core and its worker monitor.
    pub fn set_telemetry(&mut self, sink: TelemetrySink) {
        self.sink = sink.clone();
        self.monitor.set_sink(sink);
    }

    /// Choose how backfill passes plan (the periodic tick always runs a
    /// full pass).
    pub fn set_plan_mode(&mut self, mode: PlanMode) {
        self.plan_mode = mode;
    }

    /// Incremental-planning counters (all zero under [`PlanMode::Full`]).
    pub fn incremental_stats(&self) -> IncrementalStats {
        self.inc.stats()
    }

    /// The core's current time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Whether all submitted work has run to completion.
    pub fn is_done(&self) -> bool {
        self.done()
    }

    /// Point-in-time status of one job, if the core has ever seen it.
    pub fn job_status(&self, id: JobId) -> Option<JobStatus> {
        let spec_of = |id: JobId| self.specs.iter().find(|s| s.id == id).copied();
        if let Some(j) = self.jobs.get(&id) {
            let phase = if self.cancelled.contains(&id) {
                JobPhase::Cancelled
            } else if j.finish.is_some() {
                JobPhase::Finished
            } else if j.spec.num_gpus > self.cluster.spec().total_gpus() {
                JobPhase::Rejected
            } else if self
                .groups
                .iter()
                .flatten()
                .any(|g| g.members.contains(&id))
            {
                JobPhase::Running
            } else {
                JobPhase::Queued
            };
            return Some(JobStatus {
                phase,
                num_gpus: j.spec.num_gpus,
                iterations_done: j.done_iters,
                iterations_total: j.spec.iterations,
                submit: j.spec.submit_time,
                first_start: j.first_start,
                finish: j.finish,
                restarts: j.restarts,
                faults: j.faults,
            });
        }
        // Submitted, arrival not yet processed (or cancelled pre-arrival).
        let spec = spec_of(id)?;
        let phase = if self.cancelled.contains(&id) {
            JobPhase::Cancelled
        } else {
            JobPhase::Queued
        };
        Some(JobStatus {
            phase,
            num_gpus: spec.num_gpus,
            iterations_done: 0,
            iterations_total: spec.iterations,
            submit: spec.submit_time,
            first_start: None,
            finish: None,
            restarts: 0,
            faults: 0,
        })
    }

    /// Aggregate scheduler/cluster state.
    pub fn cluster_state(&self) -> ClusterState {
        ClusterState {
            now: self.now,
            total_gpus: self.cluster.spec().total_gpus(),
            used_gpus: self.cluster.used_gpus(),
            free_gpus: self.cluster.free_gpus(),
            queued_jobs: self.queue.len(),
            groups: self
                .groups
                .iter()
                .flatten()
                .map(|g| GroupState {
                    members: g.members.clone(),
                    num_gpus: g.gpus.len() as u32,
                })
                .collect(),
            scheduling_passes: self.passes,
            events: self.nevents,
        }
    }

    // ------------------------------------------------------------- events

    fn on_arrival(&mut self, idx: usize, q: &mut dyn EventQueue) {
        let spec = self.specs[idx];
        self.arrivals_left -= 1;
        if self.cancelled.contains(&spec.id) {
            // Cancelled between submission and arrival — never surfaces.
            return;
        }
        let now = self.now;
        self.sink.emit(|| Event::JobArrived {
            time: now,
            job: spec.id,
            num_gpus: spec.num_gpus,
        });
        if spec.num_gpus > self.cluster.spec().total_gpus() {
            // Can never be placed; record as rejected (never finishes).
            self.jobs.insert(
                spec.id,
                JobState {
                    spec,
                    measured: StageProfile::default(),
                    truth: spec.true_profile(),
                    done_iters: 0,
                    saved_iters: 0,
                    attained: SimDuration::ZERO,
                    first_start: None,
                    finish: None,
                    restarts: 0,
                    faults: 0,
                    deadline: None,
                    resize_epoch: 0,
                },
            );
            return;
        }
        let measured = self.profiler.measure(&spec);
        self.jobs.insert(
            spec.id,
            JobState {
                spec,
                measured,
                truth: spec.true_profile(),
                done_iters: 0,
                saved_iters: 0,
                attained: SimDuration::ZERO,
                first_start: None,
                finish: None,
                restarts: 0,
                faults: 0,
                deadline: self.cfg.faults.deadline_for(&spec),
                resize_epoch: 0,
            },
        );
        self.queue.push(spec.id);
        self.dirty = true;
        self.inc.mark(spec.num_gpus);
        if self.cfg.faults.job_is_elastic(spec.id.0) {
            self.arm_resize(spec.id, 0, q);
        }
        // The scheduler "is periodically invoked on events like job
        // arrival" (§3): backfill free GPUs right away; preemption still
        // waits for the tick.
        self.fill_pass(q);
        self.ensure_tick(q);
    }

    fn on_completion(&mut self, gid: usize, version: u64, q: &mut dyn EventQueue) {
        if !self.group_version_matches(gid, version) {
            return;
        }
        self.advance_and_reap(gid, q);
        if self.group_version_matches(gid, version) {
            // Premature wakeup: a checkpoint pushed the anchor past the
            // time this completion was scheduled for. Re-aim at the (now
            // later) completion instant; the version is unchanged, so no
            // duplicate chain starts.
            if !self.groups[gid]
                .as_ref()
                .is_some_and(|g| g.iter_time.is_zero())
            {
                self.schedule_completion(gid, q);
            }
        }
        if self.dirty {
            // Capacity was freed (or membership changed): backfill
            // immediately without preempting anyone.
            self.fill_pass(q);
        }
    }

    fn on_fault(&mut self, gid: usize, version: u64, job: JobId, q: &mut dyn EventQueue) {
        if !self.group_version_matches(gid, version) {
            return;
        }
        self.advance_and_reap(gid, q);
        // The job may have completed exactly at the fault boundary (in
        // which case the reap above re-formed or released the group and
        // bumped the version).
        let still_running = self.groups[gid]
            .as_ref()
            .is_some_and(|g| g.members.contains(&job));
        if !still_running {
            if self.dirty {
                self.fill_pass(q);
            }
            return;
        }
        // Group-aware recovery (§5): the faulted member is terminated
        // and restarted; the survivors cannot keep the interleave cycle
        // going around the hole, so they are gracefully stopped —
        // progress and attained service intact — and requeued for the
        // next pass to regroup.
        let Some(group) = self.groups[gid].take() else {
            return;
        };
        self.cluster.release(&group.gpus);
        let now = self.now;
        for m in group.members {
            if m == job {
                self.fault_job(m, FaultKind::Injected, None);
            } else {
                // advance_and_reap left only unfinished members behind.
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.saved_iters = j.done_iters;
                }
                self.queue.push(m);
                self.sink.emit(|| Event::JobPreempted { time: now, job: m });
            }
        }
        self.dirty = true;
        self.inc.mark_all();
        self.fill_pass(q);
    }

    /// Terminate a running job under a fault, route the report through
    /// the worker monitor (§5), and requeue the job.
    ///
    /// Machine-level faults destroy device state: progress rolls back to
    /// the last durable point (checkpoint or graceful stop) and the lost
    /// work is accounted. Per-job injected faults model a process crash
    /// whose state survives on the still-healthy machine, so the job
    /// resumes where it stopped and pays only the flat restart penalty.
    fn fault_job(&mut self, job: JobId, kind: FaultKind, machine: Option<u32>) {
        let now = self.now;
        let mut lost = 0u64;
        let mut wasted = SimDuration::ZERO;
        if let Some(j) = self.jobs.get_mut(&job) {
            if kind.is_machine() {
                lost = j.done_iters.saturating_sub(j.saved_iters);
                wasted = j.truth.iteration_time() * lost;
                j.done_iters = j.saved_iters;
            } else {
                j.saved_iters = j.done_iters;
            }
            j.faults += 1;
        }
        if lost > 0 {
            self.sink.emit(|| Event::WorkLost {
                time: now,
                job,
                iterations: lost,
                wasted,
            });
        }
        // Always routed (not sink-gated): the report feeds machine
        // health, which feeds placement — behavior must be identical
        // with telemetry on or off.
        self.monitor.report_fault(FaultReport {
            job,
            time: now,
            kind,
            machine,
        });
        self.queue.push(job);
    }

    fn on_checkpoint(&mut self, gid: usize, version: u64, q: &mut dyn EventQueue) {
        if !self.group_version_matches(gid, version) {
            return;
        }
        self.advance_and_reap(gid, q);
        // A reap that changed membership bumped the version and started
        // a fresh checkpoint chain — this stale chain ends here.
        if !self.group_version_matches(gid, version) {
            if self.dirty {
                self.fill_pass(q);
            }
            return;
        }
        let Some(interval) = self.cfg.checkpoint.interval else {
            return;
        };
        let cost = self.cfg.checkpoint.cost;
        let now = self.now;
        let members = match self.groups[gid].as_mut() {
            Some(group) => {
                // The whole group pauses while its members persist
                // state: iteration progress is pushed out by the cost
                // (attained service keeps accruing — the GPUs stay
                // held), which is the checkpoint overhead the lost-work
                // trade-off pays for.
                group.anchor += cost;
                group.members.clone()
            }
            None => return,
        };
        for job in members {
            let Some(j) = self.jobs.get_mut(&job) else {
                continue;
            };
            j.saved_iters = j.done_iters;
            let iters_saved = j.saved_iters;
            self.sink.emit(|| Event::CheckpointTaken {
                time: now,
                job,
                iters_saved,
            });
        }
        q.schedule(
            self.now + interval,
            SchedulerEvent::CheckpointDue {
                gid: gid as u32,
                version,
            },
        );
        if self.dirty {
            self.fill_pass(q);
        }
    }

    fn on_machine_fail(&mut self, m: u32, q: &mut dyn EventQueue) {
        let Some(mtbf) = self.cfg.faults.machine_mtbf else {
            return;
        };
        if self.done() {
            // Drain stale machine events without re-arming, so the run
            // terminates once the workload does.
            return;
        }
        let transient = self.machine_rng.gen_range(0.0..1.0) < self.cfg.faults.transient_fraction;
        let kind = if transient {
            FaultKind::MachineTransient
        } else {
            FaultKind::MachineFailStop
        };
        // Cascade: every group with a GPU on machine `m` loses all its
        // members — the interleave cycle cannot survive a hole.
        let mut jobs_hit = 0u32;
        for gid in 0..self.groups.len() {
            let hit = self.groups[gid].as_ref().is_some_and(|g| {
                g.gpus
                    .gpus
                    .iter()
                    .any(|&gpu| self.cluster.spec().machine_of(gpu) == m)
            });
            if !hit {
                continue;
            }
            // Settle attained service and whole iterations up to the
            // crash instant before rolling anyone back.
            self.advance_only(gid);
            let Some(group) = self.groups[gid].take() else {
                continue;
            };
            self.cluster.release(&group.gpus);
            let now = self.now;
            for job in group.members {
                if self.jobs[&job].remaining_iters() == 0 {
                    // Finished exactly at the fault instant — the
                    // completion stands.
                    if let Some(j) = self.jobs.get_mut(&job) {
                        j.finish = Some(now);
                    }
                    self.sink.emit(|| Event::JobCompleted { time: now, job });
                    self.monitor.forget_job(job);
                } else {
                    self.fault_job(job, kind, Some(m));
                    jobs_hit += 1;
                }
            }
        }
        let now = self.now;
        self.sink.emit(|| Event::MachineFailed {
            time: now,
            machine: m,
            transient,
            jobs_hit,
        });
        // One health strike per machine failure (not one per victim).
        self.monitor.record_machine_fault(m, now);
        if transient {
            let gap = exp_gap(&mut self.machine_rng, mtbf);
            q.schedule(self.now + gap, SchedulerEvent::MachineFailed(m));
        } else {
            self.cluster.set_down(m, true);
            let repair = exp_gap(&mut self.machine_rng, self.cfg.faults.machine_mttr);
            q.schedule(self.now + repair, SchedulerEvent::MachineRecovered(m));
        }
        self.sync_banned();
        self.dirty = true;
        self.inc.mark_all();
        self.fill_pass(q);
    }

    fn on_machine_recover(&mut self, m: u32, q: &mut dyn EventQueue) {
        let Some(mtbf) = self.cfg.faults.machine_mtbf else {
            return;
        };
        self.cluster.set_down(m, false);
        let now = self.now;
        self.sink.emit(|| Event::MachineRecovered {
            time: now,
            machine: m,
        });
        if self.done() {
            return;
        }
        let gap = exp_gap(&mut self.machine_rng, mtbf);
        q.schedule(self.now + gap, SchedulerEvent::MachineFailed(m));
        self.dirty = true;
        self.inc.mark_all();
        self.fill_pass(q);
    }

    // ------------------------------------------------- hostile scenarios

    /// Advance eviction warning on spot machine `m`: drain every hosted
    /// group to a checkpoint so the eviction destroys nothing past the
    /// drain point — but only when the checkpoint cost fits inside the
    /// warning window (a drain that cannot persist in time saves nothing
    /// and must not claim to).
    fn on_spot_warning(&mut self, m: u32, q: &mut dyn EventQueue) {
        if !self.cfg.faults.spot_active() || self.done() {
            return;
        }
        self.spot_warned[m as usize] = Some(self.now);
        self.spot_drained[m as usize] = 0;
        let cost = self.cfg.checkpoint.cost;
        if cost > self.cfg.faults.spot_warning {
            return;
        }
        let mut drained = 0u64;
        for gid in 0..self.groups.len() {
            let hosted = self.groups[gid].as_ref().is_some_and(|g| {
                g.gpus
                    .gpus
                    .iter()
                    .any(|&gpu| self.cluster.spec().machine_of(gpu) == m)
            });
            if !hosted {
                continue;
            }
            // Settle progress, then persist it — the group pauses for
            // the checkpoint cost, exactly like a periodic checkpoint.
            self.advance_and_reap(gid, q);
            let members = match self.groups[gid].as_mut() {
                Some(group) => {
                    group.anchor += cost;
                    group.members.clone()
                }
                None => continue,
            };
            let now = self.now;
            for job in members {
                let Some(j) = self.jobs.get_mut(&job) else {
                    continue;
                };
                j.saved_iters = j.done_iters;
                let iters_saved = j.saved_iters;
                self.sink.emit(|| Event::CheckpointTaken {
                    time: now,
                    job,
                    iters_saved,
                });
                drained += 1;
            }
        }
        self.spot_drained[m as usize] = drained;
        if self.dirty {
            self.fill_pass(q);
        }
    }

    /// Spot machine `m` is evicted: every hosted group cascades (device
    /// state is destroyed, so jobs roll back to their last durable mark
    /// — the drain point, if a warning fired), the machine leaves the
    /// placement mask, and capacity returns after the configured
    /// downtime.
    fn on_spot_evict(&mut self, m: u32, q: &mut dyn EventQueue) {
        if !self.cfg.faults.spot_active() {
            return;
        }
        if self.done() {
            // Drain stale spot events without re-arming, so the run
            // terminates once the workload does.
            return;
        }
        let drained = std::mem::take(&mut self.spot_drained[m as usize]);
        let mut wasted = SimDuration::ZERO;
        for gid in 0..self.groups.len() {
            let hit = self.groups[gid].as_ref().is_some_and(|g| {
                g.gpus
                    .gpus
                    .iter()
                    .any(|&gpu| self.cluster.spec().machine_of(gpu) == m)
            });
            if !hit {
                continue;
            }
            self.advance_only(gid);
            let Some(group) = self.groups[gid].take() else {
                continue;
            };
            self.cluster.release(&group.gpus);
            let now = self.now;
            for job in group.members {
                if self.jobs[&job].remaining_iters() == 0 {
                    // Finished exactly at the eviction instant — the
                    // completion stands.
                    if let Some(j) = self.jobs.get_mut(&job) {
                        j.finish = Some(now);
                    }
                    self.sink.emit(|| Event::JobCompleted { time: now, job });
                    self.monitor.forget_job(job);
                } else {
                    let j = &self.jobs[&job];
                    wasted += j.truth.iteration_time() * j.done_iters.saturating_sub(j.saved_iters);
                    self.fault_job(job, FaultKind::MachineFailStop, Some(m));
                }
            }
        }
        let now = self.now;
        self.sink.emit(|| Event::SpotEvicted {
            time: now,
            machine: m,
            drained,
            wasted,
        });
        #[cfg(feature = "audit")]
        {
            let warned_at = self.spot_warned[m as usize];
            self.spot_records.push(muri_verify::SpotEvictionRecord {
                machine: m,
                warned_at,
                evicted_at: now,
                warning_us: self.cfg.faults.spot_warning.as_micros(),
                checkpoint_cost_us: self.cfg.checkpoint.cost.as_micros(),
                drained,
                wasted_us: wasted.as_micros(),
            });
        }
        self.spot_warned[m as usize] = None;
        self.cluster.set_down(m, true);
        q.schedule(
            self.now + self.cfg.faults.spot_downtime,
            SchedulerEvent::SpotRestored(m),
        );
        self.dirty = true;
        self.inc.mark_all();
        self.fill_pass(q);
    }

    /// Evicted spot machine `m` returns: capacity rejoins the placement
    /// mask and the next eviction cycle is armed.
    fn on_spot_restore(&mut self, m: u32, q: &mut dyn EventQueue) {
        if !self.cfg.faults.spot_active() {
            return;
        }
        self.cluster.set_down(m, false);
        if self.done() {
            return;
        }
        self.arm_spot_cycle(m, q);
        self.dirty = true;
        self.inc.mark_all();
        self.fill_pass(q);
    }

    /// Arm the next resize event of elastic job `job` at `epoch`.
    fn arm_resize(&mut self, job: JobId, epoch: u64, q: &mut dyn EventQueue) {
        let Some(interval) = self.cfg.faults.elastic_interval else {
            return;
        };
        let gap = exp_gap(&mut self.elastic_rng, interval);
        q.schedule(self.now + gap, SchedulerEvent::ElasticResize { job, epoch });
    }

    /// Elastic job `job` reaches a resize point: double or halve its GPU
    /// demand (seeded coin, power-of-two within the cluster) and
    /// re-bucket it live. A queued job simply changes class; a running
    /// job's group is gracefully stopped — every member keeps attained
    /// service and durable progress — and requeued for the next pass to
    /// regroup under the new demand.
    fn on_elastic_resize(&mut self, job: JobId, epoch: u64, q: &mut dyn EventQueue) {
        if !self.cfg.faults.elastic_active() {
            return;
        }
        // One coin per resize event, drawn before any early return so
        // the stream position never depends on scheduler state.
        let grow = self.elastic_rng.gen_range(0.0..1.0) < 0.5;
        let Some(state) = self.jobs.get(&job) else {
            return;
        };
        if state.resize_epoch != epoch
            || state.finish.is_some()
            || state.remaining_iters() == 0
            || self.cancelled.contains(&job)
        {
            // Stale chain, finished, or cancelled: the chain ends here.
            return;
        }
        let from = state.spec.num_gpus;
        let total = self.cluster.spec().total_gpus();
        let cap = prev_power_of_two(total);
        let base = if from.is_power_of_two() {
            from
        } else {
            prev_power_of_two(from.max(1))
        };
        let to = if grow {
            base.saturating_mul(2).min(cap)
        } else {
            (base / 2).max(1)
        };
        if to == from {
            // Pinned at the boundary this time — try again next cycle.
            if let Some(j) = self.jobs.get_mut(&job) {
                j.resize_epoch = epoch + 1;
            }
            self.arm_resize(job, epoch + 1, q);
            return;
        }
        // The audit's "before" snapshot is taken after progress is
        // settled (advance_and_reap credits the in-flight slice) but
        // before the graceful stop — conservation means the stop and
        // requeue themselves must not move attained service.
        #[cfg(feature = "audit")]
        let mut before: Option<(u64, u64)> = None;
        if let Some(gid) = self
            .groups
            .iter()
            .position(|g| g.as_ref().is_some_and(|g| g.members.contains(&job)))
        {
            // Settle progress first; the job may complete exactly at the
            // resize boundary, in which case the completion stands and
            // the chain ends.
            self.advance_and_reap(gid, q);
            let still_running = self.groups[gid]
                .as_ref()
                .is_some_and(|g| g.members.contains(&job));
            if !still_running {
                if self.jobs[&job].remaining_iters() > 0 {
                    self.finish_resize(job, epoch, from, to, q);
                } else if self.dirty {
                    self.fill_pass(q);
                }
                return;
            }
            #[cfg(feature = "audit")]
            {
                let j = &self.jobs[&job];
                before = Some((j.attained.as_micros(), j.saved_iters));
            }
            // Graceful stop of the whole group: the survivors cannot
            // keep the interleave cycle going around the re-bucketed
            // member, so everyone requeues with progress intact.
            let Some(group) = self.groups[gid].take() else {
                return;
            };
            self.cluster.release(&group.gpus);
            let now = self.now;
            for member in group.members {
                if let Some(j) = self.jobs.get_mut(&member) {
                    j.saved_iters = j.done_iters;
                }
                self.queue.push(member);
                self.sink.emit(|| Event::JobPreempted {
                    time: now,
                    job: member,
                });
            }
        }
        #[cfg(feature = "audit")]
        {
            let j = &self.jobs[&job];
            let (attained_before, saved_before) =
                before.unwrap_or((j.attained.as_micros(), j.saved_iters));
            self.elastic_records.push(muri_verify::ElasticResizeRecord {
                job,
                from_gpus: from,
                to_gpus: to,
                attained_before_us: attained_before,
                attained_after_us: j.attained.as_micros(),
                saved_before,
                saved_after: j.saved_iters,
                total_gpus: total,
            });
        }
        self.finish_resize(job, epoch, from, to, q);
    }

    /// Apply the new GPU demand, re-arm the chain, and replan.
    fn finish_resize(
        &mut self,
        job: JobId,
        epoch: u64,
        from: u32,
        to: u32,
        q: &mut dyn EventQueue,
    ) {
        if let Some(j) = self.jobs.get_mut(&job) {
            j.spec.num_gpus = to;
            j.resize_epoch = epoch + 1;
        }
        let now = self.now;
        self.sink.emit(|| Event::ElasticResized {
            time: now,
            job,
            from_gpus: from,
            to_gpus: to,
        });
        self.dirty = true;
        self.inc.mark(from);
        self.inc.mark(to);
        self.arm_resize(job, epoch + 1, q);
        self.fill_pass(q);
    }

    fn on_tick(&mut self, q: &mut dyn EventQueue) {
        self.next_tick = None;
        // Settle every group's progress before planning.
        for gid in 0..self.groups.len() {
            if self.groups[gid].is_some() {
                self.advance_and_reap(gid, q);
            }
        }
        // Blacklist expiry is purely time-based (no event fires), so the
        // tick refreshes the placement mask; a changed mask is freed (or
        // newly lost) capacity and must replan.
        if self.sync_banned() {
            self.dirty = true;
        }
        // Replan when anything changed — or when packed groups coexist
        // with idle GPUs (capacity freed since the groups formed, so
        // spreading the members back out would speed them up).
        let could_spread = self.cfg.scheduler.policy.preemptive()
            && self.cluster.free_gpus() > 0
            && self.groups.iter().flatten().any(|g| g.members.len() > 1);
        if self.dirty || could_spread {
            self.planning_pass(q);
            self.dirty = false;
        }
        self.sample();
        self.ensure_tick(q);
    }

    fn ensure_tick(&mut self, q: &mut dyn EventQueue) {
        if self.next_tick.is_some() || self.done() {
            return;
        }
        let at = self.now + self.cfg.scheduler.interval;
        self.next_tick = Some(at);
        q.schedule(at, SchedulerEvent::PlanRequested);
    }

    fn done(&self) -> bool {
        self.arrivals_left == 0 && self.queue.is_empty() && self.groups.iter().all(Option::is_none)
    }

    // ------------------------------------------------------- group motion

    fn group_version_matches(&self, gid: usize, version: u64) -> bool {
        self.groups
            .get(gid)
            .and_then(Option::as_ref)
            .is_some_and(|g| g.version == version)
    }

    /// Account elapsed time to a group: attained service, whole iterations
    /// completed, and member completion. Re-forms or releases the group as
    /// members finish.
    fn advance_and_reap(&mut self, gid: usize, q: &mut dyn EventQueue) {
        let Some(group) = self.groups[gid].as_mut() else {
            return;
        };
        let now = self.now;
        // Attained wall time (includes the restart-penalty window: the
        // job occupies its GPUs during restore too).
        if now > group.last_touch {
            let dt = now.since(group.last_touch);
            group.last_touch = now;
            for &m in &group.members {
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.attained += dt;
                }
            }
        }
        // Whole iterations since the anchor.
        if now > group.anchor && !group.iter_time.is_zero() {
            let whole = now.since(group.anchor).as_micros() / group.iter_time.as_micros();
            if whole > 0 {
                group.anchor += group.iter_time * whole;
                for &m in &group.members {
                    let Some(j) = self.jobs.get_mut(&m) else {
                        continue;
                    };
                    j.done_iters = (j.done_iters + whole).min(j.spec.iterations);
                }
            }
        }
        // Reap finished members.
        let members = group.members.clone();
        let finished: Vec<JobId> = members
            .iter()
            .copied()
            .filter(|m| self.jobs[m].remaining_iters() == 0)
            .collect();
        if finished.is_empty() {
            return;
        }
        for m in &finished {
            if let Some(j) = self.jobs.get_mut(m) {
                j.finish = Some(now);
            }
            self.sink
                .emit(|| Event::JobCompleted { time: now, job: *m });
            self.monitor.forget_job(*m);
            self.inc.mark(self.jobs[m].spec.num_gpus);
        }
        if self.cfg.faults.health_active() {
            // Completions are healthy progress: clear the hosting
            // machines' consecutive-fault streaks.
            for m in self.machines_of_group(gid) {
                self.monitor.record_machine_ok(m);
            }
        }
        let survivors: Vec<JobId> = members
            .into_iter()
            .filter(|m| !finished.contains(m))
            .collect();
        self.dirty = true;
        self.reform_group(gid, survivors, q);
    }

    /// Distinct machines spanned by a group's lease, ascending.
    fn machines_of_group(&self, gid: usize) -> Vec<u32> {
        let mut ms: Vec<u32> = self.groups[gid]
            .as_ref()
            .map(|g| {
                g.gpus
                    .gpus
                    .iter()
                    .map(|&gpu| self.cluster.spec().machine_of(gpu))
                    .collect()
            })
            .unwrap_or_default();
        ms.sort_unstable();
        ms.dedup();
        ms
    }

    /// Mirror the monitor's current blacklist into the cluster's
    /// placement mask (no-op when machine-health tracking is off).
    /// Returns `true` when the mask changed — a blacklist expiry frees
    /// capacity without raising an event, so the caller must replan.
    fn sync_banned(&mut self) -> bool {
        if !self.cfg.faults.health_active() {
            return false;
        }
        let banned = self.monitor.blacklisted_machines(self.now);
        let mut changed = false;
        for m in 0..self.cfg.cluster.machines {
            let ban = banned.binary_search(&m).is_ok();
            if self.cluster.is_banned(m) != ban {
                self.cluster.set_banned(m, ban);
                changed = true;
            }
        }
        changed
    }

    /// Replace a group's membership (possibly empty → release GPUs),
    /// recompute execution speed, and schedule the next completion.
    fn reform_group(&mut self, gid: usize, members: Vec<JobId>, q: &mut dyn EventQueue) {
        self.next_version += 1;
        let version = self.next_version;
        let Some(group) = self.groups[gid].as_mut() else {
            return;
        };
        if members.is_empty() {
            let gpus = group.gpus.clone();
            self.groups[gid] = None;
            self.cluster.release(&gpus);
            return;
        }
        group.members = members;
        group.version = version;
        group.anchor = self.now;
        group.last_touch = self.now;
        let member_ids = group.members.clone();
        let gpu_list = group.gpus.gpus.clone();
        let iter_time = self.execution_iteration_time(&member_ids, &gpu_list);
        if let Some(group) = self.groups[gid].as_mut() {
            group.iter_time = iter_time;
        }
        self.schedule_completion(gid, q);
        self.schedule_checkpoint(gid, q);
    }

    /// Realized group iteration time. The scheduler *plans* (chooses the
    /// stage ordering) from the profiler's measured profiles, but the plan
    /// *executes* against the true profiles — this is exactly how noisy
    /// profiling hurts Muri in Fig. 14: a bad measurement picks a bad
    /// ordering, and reality pays for it. Stages the plan did not
    /// schedule at all (measured as zero but truly nonzero) cannot
    /// overlap anything and serialize on top.
    fn execution_iteration_time(&self, members: &[JobId], gpus: &[GpuId]) -> SimDuration {
        let machines_spanned = self.cluster.spec().machines_spanned(gpus);
        let measured: Vec<StageProfile> = members.iter().map(|m| self.jobs[m].measured).collect();
        let net_factor =
            1.0 + self.cfg.cross_machine_net_penalty * machines_spanned.saturating_sub(1) as f64;
        let truths: Vec<StageProfile> = members
            .iter()
            .map(|m| {
                let t = self.jobs[m].truth;
                if net_factor > 1.0 {
                    t.scale_stage(ResourceKind::Network, net_factor)
                } else {
                    t
                }
            })
            .collect();
        let ordering = choose_ordering(&measured, self.cfg.scheduler.grouping.ordering);
        let mut t = muri_interleave::efficiency::group_iteration_time_on_cycle(
            &truths,
            &ordering.offsets,
            &ordering.cycle,
        );
        for truth in &truths {
            for r in ResourceKind::ALL {
                if !ordering.cycle.contains(&r) {
                    t += truth.duration(r);
                }
            }
        }
        let mut factor = self
            .cfg
            .group_overhead(truths.len(), self.cfg.scheduler.policy.gpu_shares());
        // The interleave cycle stalls with its slowest participant: the
        // worst per-machine speed factor spanned by the lease governs
        // the whole group. Degradation is the homogeneous special case
        // (speed = `degraded_slowdown` on degraded machines, 1 else);
        // GPU generations contribute their generation factor on top.
        let worst = gpus
            .iter()
            .map(|&g| self.speed[self.cluster.spec().machine_of(g) as usize])
            .fold(1.0_f64, f64::max);
        if worst > 1.0 {
            factor *= worst;
        }
        t.scale(factor)
    }

    fn schedule_completion(&mut self, gid: usize, q: &mut dyn EventQueue) {
        let Some(group) = self.groups[gid].as_ref() else {
            return;
        };
        let Some(min_rem) = group
            .members
            .iter()
            .map(|m| self.jobs[m].remaining_iters())
            .min()
        else {
            return;
        };
        let at = if group.iter_time.is_zero() {
            group.anchor
        } else {
            group.anchor + group.iter_time * min_rem
        };
        let ev = SchedulerEvent::JobCompleted {
            gid: gid as u32,
            version: group.version,
        };
        q.schedule(at.max(self.now), ev);
    }

    /// Arm the group's checkpoint chain. One chain runs per group
    /// version; a stale chain dies at the handler's version guard.
    fn schedule_checkpoint(&mut self, gid: usize, q: &mut dyn EventQueue) {
        let Some(interval) = self.cfg.checkpoint.interval else {
            return;
        };
        let Some(version) = self.groups[gid].as_ref().map(|g| g.version) else {
            return;
        };
        q.schedule(
            self.now + interval,
            SchedulerEvent::CheckpointDue {
                gid: gid as u32,
                version,
            },
        );
    }

    // ---------------------------------------------------------- planning

    /// Full (possibly preemptive) planning pass at a tick.
    fn planning_pass(&mut self, q: &mut dyn EventQueue) {
        self.passes += 1;
        self.sync_banned();
        let preemptive = self.cfg.scheduler.policy.preemptive();
        let mut candidates: Vec<PendingJob> = self
            .queue
            .iter()
            .map(|id| self.jobs[id].as_pending())
            .collect();
        let capacity = if preemptive {
            for g in self.groups.iter().flatten() {
                for m in &g.members {
                    candidates.push(self.jobs[m].as_pending());
                }
            }
            // Plan only against machines that can host placements —
            // conservative when kept groups still sit on newly-banned
            // machines (their capacity is simply not re-offered).
            self.cluster.available_gpus()
        } else {
            self.cluster.free_gpus()
        };
        let plan = plan_schedule_with(
            &self.cfg.scheduler,
            &candidates,
            capacity,
            self.now,
            &self.sink,
        );
        if std::env::var_os("MURI_SIM_DEBUG").is_some() {
            let planned_gpus: u32 = plan.iter().map(|p| p.num_gpus).sum();
            let planned_jobs: usize = plan.iter().map(|p| p.group.len()).sum();
            let demand: u32 = candidates.iter().map(|c| c.num_gpus).sum();
            eprintln!(
                "[plan @{}] candidates={} demand={} capacity={} -> groups={} jobs={} gpus={}",
                self.now,
                candidates.len(),
                demand,
                capacity,
                plan.len(),
                planned_jobs,
                planned_gpus
            );
        }

        // Index planned groups by member set.
        let mut planned: Vec<(Vec<JobId>, PlannedGroup)> = plan
            .into_iter()
            .map(|p| {
                let mut ids = p.group.job_ids();
                ids.sort_unstable();
                (ids, p)
            })
            .collect();

        if preemptive {
            // Keep running groups whose membership is unchanged.
            for gid in 0..self.groups.len() {
                let Some(g) = self.groups[gid].as_ref() else {
                    continue;
                };
                let mut ids = g.members.clone();
                ids.sort_unstable();
                if let Some(pos) = planned.iter().position(|(p_ids, _)| *p_ids == ids) {
                    planned.swap_remove(pos);
                } else {
                    self.teardown_group(gid);
                }
            }
        }
        // Start remaining planned groups (placement in plan order —
        // descending GPU count).
        planned.sort_by(|a, b| {
            b.1.num_gpus
                .cmp(&a.1.num_gpus)
                .then_with(|| a.1.group.members[0].job.0.cmp(&b.1.group.members[0].job.0))
        });
        for (ids, p) in planned {
            self.start_group(ids, p.num_gpus, q);
        }
        // A full pass saw every class — incremental marks are spent.
        self.inc.clear();
        self.audit_pass();
    }

    /// Non-preemptive backfill of free GPUs (on completions/faults).
    fn fill_pass(&mut self, q: &mut dyn EventQueue) {
        if self.queue.is_empty() {
            return;
        }
        self.passes += 1;
        self.sync_banned();
        let candidates: Vec<PendingJob> = self
            .queue
            .iter()
            .map(|id| self.jobs[id].as_pending())
            .collect();
        let free = self.cluster.free_gpus();
        if free > 0 {
            let plan = match self.plan_mode {
                PlanMode::Full => {
                    plan_schedule_with(&self.cfg.scheduler, &candidates, free, self.now, &self.sink)
                }
                PlanMode::Incremental => {
                    plan_incremental_with(
                        &self.cfg.scheduler,
                        &candidates,
                        free,
                        self.now,
                        &self.sink,
                        &mut self.inc,
                    )
                    .plan
                }
            };
            for p in plan {
                let mut ids = p.group.job_ids();
                ids.sort_unstable();
                self.start_group(ids, p.num_gpus, q);
            }
        }
        if self.cfg.scheduler.policy.gpu_shares() {
            self.antman_join_pass(q);
        }
        self.audit_pass();
    }

    /// AntMan's opportunistic sharing: when no GPUs are free, queued jobs
    /// may join a running group of the same GPU count that still has a
    /// resident slot (`antman_max_per_gpu`), in FIFO order. The joiners
    /// run degraded (the sharing-overhead model) but start immediately —
    /// AntMan's makespan advantage in Fig. 10 comes from exactly this.
    fn antman_join_pass(&mut self, q: &mut dyn EventQueue) {
        let cap = self.cfg.scheduler.antman_max_per_gpu.max(1);
        // FIFO order over the queue.
        let mut queued: Vec<JobId> = self.queue.clone();
        queued.sort_by_key(|id| (self.jobs[id].spec.submit_time, *id));
        for job in queued {
            let num_gpus = self.jobs[&job].spec.num_gpus;
            let host = self.groups.iter().position(|g| {
                g.as_ref().is_some_and(|g| {
                    g.gpus.len() == num_gpus as usize
                        && g.members.len() < cap
                        && g.gpus.gpus.iter().all(|&gpu| {
                            self.cluster
                                .machine_available(self.cluster.spec().machine_of(gpu))
                        })
                })
            });
            let Some(gid) = host else {
                continue;
            };
            self.advance_and_reap(gid, q);
            let Some(group) = self.groups[gid].as_ref() else {
                continue;
            };
            if group.members.len() >= cap {
                continue;
            }
            self.queue.retain(|id| *id != job);
            let now = self.now;
            if let Some(j) = self.jobs.get_mut(&job) {
                let restart = j.first_start.is_some();
                if restart {
                    j.restarts += 1;
                } else {
                    j.first_start = Some(self.now);
                }
                self.sink.emit(|| Event::JobStarted {
                    time: now,
                    job,
                    restart,
                });
            }
            let mut members = group.members.clone();
            members.push(job);
            self.reform_group(gid, members, q);
        }
    }

    /// Terminate a running group: members go back to the queue with their
    /// progress; GPUs are freed. (Partial iterations are lost — the cost
    /// of preemption beyond the restart penalty.)
    fn teardown_group(&mut self, gid: usize) {
        self.advance_only(gid);
        let Some(group) = self.groups[gid].take() else {
            return;
        };
        self.cluster.release(&group.gpus);
        let now = self.now;
        for m in group.members {
            if self.jobs[&m].remaining_iters() == 0 {
                // Completed exactly at the tick boundary.
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.finish = Some(self.now);
                }
                self.sink.emit(|| Event::JobCompleted { time: now, job: m });
                self.monitor.forget_job(m);
            } else {
                // Graceful stop: progress persists across the preemption
                // (the restart penalty models the save/restore cost).
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.saved_iters = j.done_iters;
                }
                self.queue.push(m);
                self.sink.emit(|| Event::JobPreempted { time: now, job: m });
            }
        }
    }

    /// Advance without reaping (used by teardown, which handles members
    /// itself).
    fn advance_only(&mut self, gid: usize) {
        let Some(group) = self.groups[gid].as_mut() else {
            return;
        };
        let now = self.now;
        if now > group.last_touch {
            let dt = now.since(group.last_touch);
            group.last_touch = now;
            for &m in &group.members {
                if let Some(j) = self.jobs.get_mut(&m) {
                    j.attained += dt;
                }
            }
        }
        if now > group.anchor && !group.iter_time.is_zero() {
            let whole = now.since(group.anchor).as_micros() / group.iter_time.as_micros();
            if whole > 0 {
                group.anchor += group.iter_time * whole;
                for &m in &group.members {
                    let Some(j) = self.jobs.get_mut(&m) else {
                        continue;
                    };
                    j.done_iters = (j.done_iters + whole).min(j.spec.iterations);
                }
            }
        }
    }

    fn start_group(&mut self, ids: Vec<JobId>, num_gpus: u32, q: &mut dyn EventQueue) {
        debug_assert!(!ids.is_empty());
        let Some(gpus) = self.cluster.allocate(num_gpus) else {
            // Capacity raced away (shouldn't happen — plans respect
            // capacity); leave the jobs queued.
            return;
        };
        // Remove members from the queue.
        self.queue.retain(|id| !ids.contains(id));
        let penalty = self.cfg.scheduler.restart_penalty;
        let now = self.now;
        for id in &ids {
            let Some(j) = self.jobs.get_mut(id) else {
                continue;
            };
            let restart = j.first_start.is_some();
            if restart {
                j.restarts += 1;
            } else {
                j.first_start = Some(self.now);
            }
            self.sink.emit(|| Event::JobStarted {
                time: now,
                job: *id,
                restart,
            });
        }
        let iter_time = self.execution_iteration_time(&ids, &gpus.gpus);
        let gid = self
            .groups
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.groups.push(None);
                self.groups.len() - 1
            });
        self.next_version += 1;
        self.groups[gid] = Some(RunningGroup {
            version: self.next_version,
            gpus,
            members: ids.clone(),
            iter_time,
            anchor: self.now + penalty,
            last_touch: self.now,
        });
        self.schedule_completion(gid, q);
        self.schedule_checkpoint(gid, q);
        self.maybe_schedule_fault(gid, &ids, q);
        if self.cfg.faults.health_active() {
            // The monitor compares each hosting machine's realized stage
            // rate against the plan; degraded machines read as
            // stragglers, on-pace machines clear their strikes.
            for m in self.machines_of_group(gid) {
                let ratio = if self.degraded[m as usize] {
                    self.cfg.faults.degraded_slowdown
                } else {
                    1.0
                };
                self.monitor.observe_machine_rate(m, self.now, ratio);
            }
            self.sync_banned();
        }
        if self.sink.is_enabled() {
            // Trace the group's interleaving lanes over its first two
            // iterations (the renderer clips the window to that anyway).
            // Lanes show the *planned* schedule — the measured profiles
            // under the chosen ordering — which is what the scheduler
            // believed it was building (Fig. 4-style timelines).
            let members: Vec<GroupMember> = ids
                .iter()
                .map(|&job| GroupMember {
                    job,
                    profile: self.jobs[&job].measured,
                })
                .collect();
            let group = InterleaveGroup::form(members, self.cfg.scheduler.grouping.ordering);
            let start = now + penalty;
            let end = start + iter_time * 2;
            self.sink
                .with(|t| t.record_group_timeline(&group, num_gpus, start, end));
        }
    }

    fn maybe_schedule_fault(&mut self, gid: usize, ids: &[JobId], q: &mut dyn EventQueue) {
        let Some(mtbf) = self.cfg.faults.mtbf else {
            return;
        };
        let Some(version) = self.groups[gid].as_ref().map(|g| g.version) else {
            return;
        };
        for &job in ids {
            let u: f64 = self.fault_rng.gen_range(f64::EPSILON..1.0);
            let dt = SimDuration::from_secs_f64(-mtbf.as_secs_f64() * u.ln());
            let ev = SchedulerEvent::JobFault {
                gid: gid as u32,
                version,
                job,
            };
            q.schedule(self.now + dt, ev);
        }
    }

    // ---------------------------------------------------------- auditing

    /// Snapshot the engine state for the invariant auditor.
    #[cfg(feature = "audit")]
    fn tick_snapshot(&self) -> muri_verify::TickSnapshot {
        let total_gpus = self.cluster.spec().total_gpus();
        let mut finished = Vec::new();
        let mut rejected = Vec::new();
        for j in self.jobs.values() {
            if j.spec.num_gpus > total_gpus {
                rejected.push(j.spec.id);
            } else if j.finish.is_some() {
                finished.push(j.spec.id);
            }
        }
        muri_verify::TickSnapshot {
            time: self.now,
            total_gpus,
            running: self
                .groups
                .iter()
                .flatten()
                .map(|g| muri_verify::GroupSnapshot {
                    members: g.members.clone(),
                    gpus: g.gpus.gpus.clone(),
                })
                .collect(),
            queued: self.queue.clone(),
            finished,
            rejected,
            // Only arrived cancellations: a pre-arrival cancel swallows
            // the arrival, so the job never enters the tracked universe.
            cancelled: self
                .cancelled
                .iter()
                .filter(|id| self.jobs.contains_key(id))
                .copied()
                .collect(),
            arrived: self.jobs.keys().copied().collect(),
        }
    }

    /// Snapshot the fault/recovery-relevant state for `audit_recovery`.
    #[cfg(feature = "audit")]
    fn recovery_snapshot(&self) -> muri_verify::RecoverySnapshot {
        let spec = self.cluster.spec();
        let total_gpus = spec.total_gpus();
        let down = (0..spec.machines)
            .filter(|&m| self.cluster.is_down(m))
            .collect();
        // The monitor's view (with expiry instants), not the cluster
        // mask: the mask is only refreshed at planning passes and ticks,
        // and the expiry is what lets the auditor distinguish a ban that
        // spanned the window from one that lapsed and was re-issued.
        let blacklisted = self
            .monitor
            .blacklisted_with_expiry(self.now)
            .into_iter()
            .map(|(m, until)| (m, until.as_micros()))
            .collect();
        let mut finished = Vec::new();
        let mut attained_us = Vec::new();
        let mut saved_iters = Vec::new();
        let mut done_iters = Vec::new();
        for j in self.jobs.values() {
            if j.spec.num_gpus > total_gpus {
                continue; // rejected at submission; never tracked
            }
            if j.finish.is_some() {
                finished.push(j.spec.id);
            }
            attained_us.push((j.spec.id, j.attained.as_micros()));
            saved_iters.push((j.spec.id, j.saved_iters));
            done_iters.push((j.spec.id, j.done_iters));
        }
        finished.sort_unstable();
        attained_us.sort_unstable();
        saved_iters.sort_unstable();
        done_iters.sort_unstable();
        muri_verify::RecoverySnapshot {
            time: self.now,
            gpus_per_machine: spec.machine.gpus,
            down,
            blacklisted,
            running: self
                .groups
                .iter()
                .flatten()
                .map(|g| muri_verify::GroupSnapshot {
                    members: g.members.clone(),
                    gpus: g.gpus.gpus.clone(),
                })
                .collect(),
            queued: self.queue.clone(),
            finished,
            cancelled: self
                .cancelled
                .iter()
                .filter(|id| self.jobs.contains_key(id))
                .copied()
                .collect(),
            attained_us,
            saved_iters,
            done_iters,
        }
    }

    /// Audit hook, run after every scheduling pass. When collecting
    /// (`simulate_audited`) violations accumulate in the report;
    /// otherwise debug builds abort on the first violation.
    #[cfg(feature = "audit")]
    fn audit_pass(&mut self) {
        if self.audit.is_none() && !cfg!(debug_assertions) {
            // Not auditing: drop the scenario records instead of
            // accumulating them for nobody.
            self.spot_records.clear();
            self.elastic_records.clear();
            return;
        }
        let snap = self.tick_snapshot();
        let mut report = muri_verify::audit_tick(&snap);
        let rec = self.recovery_snapshot();
        report.merge(muri_verify::audit_recovery(
            self.prev_recovery.as_ref(),
            &rec,
        ));
        self.prev_recovery = Some(rec);
        report.merge(muri_verify::audit_spot(&self.spot_records));
        self.spot_records.clear();
        report.merge(muri_verify::audit_elastic(&self.elastic_records));
        self.elastic_records.clear();
        if self.cluster.is_hetero() {
            report.merge(muri_verify::audit_hetero(&muri_verify::HeteroSnapshot {
                gpus_per_machine: self.cluster.spec().machine.gpus,
                generations: (0..self.cfg.cluster.machines)
                    .map(|m| self.cluster.generation_of_machine(m))
                    .collect(),
                running: snap.running.clone(),
            }));
        }
        let cur_slo: Vec<muri_verify::SloKeyRecord> = self
            .queue
            .iter()
            .filter_map(|id| {
                let j = &self.jobs[id];
                j.deadline?;
                let p = self
                    .cfg
                    .scheduler
                    .policy
                    .priority(&j.as_pending(), self.now);
                Some(muri_verify::SloKeyRecord {
                    job: *id,
                    key: p.primary,
                    state: (
                        j.attained.as_micros(),
                        j.remaining_solo().as_micros(),
                        j.spec.num_gpus,
                    ),
                })
            })
            .collect();
        report.merge(muri_verify::audit_slo_escalation(&self.prev_slo, &cur_slo));
        self.prev_slo = cur_slo;
        match self.audit.as_mut() {
            Some(acc) => acc.merge(report),
            None => debug_assert!(
                report.is_clean(),
                "engine state violates invariants at t={}:\n{report}",
                snap.time
            ),
        }
    }

    /// No-op without the `audit` feature.
    #[cfg(not(feature = "audit"))]
    #[allow(clippy::unused_self)]
    fn audit_pass(&mut self) {}

    // ---------------------------------------------------------- sampling

    fn sample(&mut self) {
        let total_gpus = f64::from(self.cluster.spec().total_gpus());
        let mut util = ResourceVec::splat(0.0);
        let mut running_jobs = 0usize;
        for g in self.groups.iter().flatten() {
            running_jobs += g.members.len();
            let t = g.iter_time.as_secs_f64();
            if t == 0.0 {
                continue;
            }
            for r in ResourceKind::ALL {
                let busy: f64 = g
                    .members
                    .iter()
                    .map(|m| self.jobs[m].truth.duration(r).as_secs_f64())
                    .sum();
                util[r] += (busy / t).min(1.0) * g.gpus.len() as f64 / total_gpus;
            }
        }
        let blocking: Vec<f64> = self
            .queue
            .iter()
            .filter_map(|id| {
                let j = &self.jobs[id];
                let pending = self
                    .now
                    .since(j.spec.submit_time)
                    .saturating_sub(j.attained);
                let rem = j.remaining_solo().as_secs_f64();
                (rem > 0.0).then(|| pending.as_secs_f64() / rem)
            })
            .collect();
        if self.sink.is_enabled() {
            self.monitor.record_utilization(UtilizationSnapshot {
                time: self.now,
                util,
            });
            // Executor progress reports for every running member (the
            // monitor prunes these as jobs finish).
            for g in self.groups.iter().flatten() {
                for &m in &g.members {
                    let j = &self.jobs[&m];
                    self.monitor.record_progress(
                        m,
                        JobProgress {
                            completed_iterations: j.done_iters,
                            total_iterations: j.spec.iterations,
                            avg_iteration: Some(g.iter_time),
                        },
                    );
                }
            }
        }
        self.series.push(SeriesSample {
            time: self.now,
            queue_length: self.queue.len(),
            blocking_index: muri_workload::stats::mean(&blocking),
            utilization: util,
            running_jobs,
            used_gpus: self.cluster.used_gpus(),
        });
    }

    /// Consume the core and produce the final report: one record per
    /// submitted job (submission order), the tick time series, and the
    /// aggregate counters.
    pub fn finalize(self) -> SimReport {
        let mut records: Vec<JobRecord> = self
            .specs
            .iter()
            .filter_map(|spec| self.jobs.get(&spec.id))
            .map(|j| JobRecord {
                id: j.spec.id,
                model: j.spec.model,
                num_gpus: j.spec.num_gpus,
                submit: j.spec.submit_time,
                first_start: j.first_start,
                finish: j.finish,
                attained: j.attained,
                iterations_done: j.done_iters,
                iterations_total: j.spec.iterations,
                restarts: j.restarts,
                faults: j.faults,
            })
            .collect();
        records.sort_by_key(|r| (r.submit, r.id));
        let makespan = records
            .iter()
            .filter_map(|r| r.finish)
            .max()
            .map_or(SimDuration::ZERO, |t| t.since(SimTime::ZERO));
        SimReport {
            policy: self.cfg.scheduler.policy.name().to_string(),
            trace: self.trace_name,
            records,
            series: self.series,
            makespan,
            scheduling_passes: self.passes,
            events: self.nevents,
        }
    }
}
