//! # muri-sim
//!
//! Discrete-event GPU-cluster simulator for DL training schedulers:
//!
//! * [`config`] — simulation configuration (cluster, scheduler, profiler
//!   noise, fault/checkpoint plans, contention overheads);
//! * [`engine`] — the scheduler core ([`EngineCore`], built on the
//!   `muri-engine` event core) plus the batch harness: arrivals,
//!   six-minute scheduling ticks with keep-identical-groups preemption,
//!   completion backfill, group execution per Eq. 3, machine-level fault
//!   domains with checkpoint/restore and group-aware recovery — and the
//!   live API (`submit`/`cancel`/`advance_to`) the `muri-serve` daemon
//!   drives;
//! * [`metrics`] — job records, the paper's aggregate metrics (average /
//!   tail JCT, makespan) and time series (queue length, blocking index,
//!   per-resource utilization — Fig. 8).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod metrics;
pub mod replicate;

pub use config::{CheckpointConfig, FaultConfig, FaultPlan, SimConfig};
#[cfg(feature = "audit")]
pub use engine::simulate_audited;
pub use engine::{
    simulate, simulate_with_telemetry, ClusterState, EngineCore, GroupState, JobPhase, JobStatus,
};
pub use metrics::{JobRecord, SeriesSample, SimReport};
pub use replicate::{replicate, replicate_with_workers, MetricSummary, ReplicatedMetrics};
