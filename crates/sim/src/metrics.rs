//! Simulation metrics — everything §6 reports.
//!
//! * **Average JCT** and **makespan**: "two common metrics to reflect the
//!   job and resource efficiency of schedulers";
//! * **tail JCT** (99th percentile): fairness;
//! * **queue length**: busyness of the cluster;
//! * **blocking index**: "the average ratio of pending time to remaining
//!   time of pending jobs, showing the ability to avoid job starvation";
//! * **resource utilization** per resource type (the Fig. 8 curves).

use muri_workload::stats;
use muri_workload::{JobId, ModelKind, ResourceVec, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Lifecycle record of one job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobRecord {
    /// Job id.
    pub id: JobId,
    /// Model trained.
    pub model: ModelKind,
    /// GPUs used.
    pub num_gpus: u32,
    /// Submission time.
    pub submit: SimTime,
    /// First time the job started executing, if it ever did.
    pub first_start: Option<SimTime>,
    /// Completion time, if the job finished.
    pub finish: Option<SimTime>,
    /// Total wall-clock time spent executing (attained service).
    pub attained: SimDuration,
    /// Iterations completed.
    pub iterations_done: u64,
    /// Iterations requested.
    pub iterations_total: u64,
    /// Number of times the job was restarted (preemptions + faults).
    pub restarts: u32,
    /// Number of faults the job suffered.
    pub faults: u32,
}

impl JobRecord {
    /// Job completion time (finish − submit). `None` if unfinished.
    pub fn jct(&self) -> Option<SimDuration> {
        self.finish.map(|f| f.since(self.submit))
    }

    /// Queueing delay before the first start. `None` if never started.
    pub fn queueing_delay(&self) -> Option<SimDuration> {
        self.first_start.map(|s| s.since(self.submit))
    }
}

/// One point of the sampled time series (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SeriesSample {
    /// Sample time.
    pub time: SimTime,
    /// Jobs waiting in the queue.
    pub queue_length: usize,
    /// Average pending-time / remaining-time over queued jobs.
    pub blocking_index: f64,
    /// Cluster-wide utilization per resource in `[0, 1]`
    /// (busy GPU-set-weighted fraction over all GPUs).
    pub utilization: ResourceVec<f64>,
    /// Jobs currently running.
    pub running_jobs: usize,
    /// GPUs currently leased.
    pub used_gpus: u32,
}

/// Full result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Scheduler name (e.g. "Muri-S").
    pub policy: String,
    /// Trace name.
    pub trace: String,
    /// Per-job records, by submission order.
    pub records: Vec<JobRecord>,
    /// Sampled time series.
    pub series: Vec<SeriesSample>,
    /// Completion time of the last job.
    pub makespan: SimDuration,
    /// Number of scheduling passes executed.
    pub scheduling_passes: u64,
    /// Total simulated events processed.
    pub events: u64,
}

impl SimReport {
    /// All finished-job JCTs in seconds.
    pub fn jcts_secs(&self) -> Vec<f64> {
        self.records
            .iter()
            .filter_map(JobRecord::jct)
            .map(muri_workload::SimDuration::as_secs_f64)
            .collect()
    }

    /// Average JCT in seconds.
    pub fn avg_jct_secs(&self) -> f64 {
        stats::mean(&self.jcts_secs())
    }

    /// Tail (99th-percentile) JCT in seconds.
    pub fn p99_jct_secs(&self) -> f64 {
        stats::percentile(&self.jcts_secs(), 99.0)
    }

    /// Makespan in seconds.
    pub fn makespan_secs(&self) -> f64 {
        self.makespan.as_secs_f64()
    }

    /// Number of jobs that finished.
    pub fn finished_jobs(&self) -> usize {
        self.records.iter().filter(|r| r.finish.is_some()).count()
    }

    /// True if every job finished.
    pub fn all_finished(&self) -> bool {
        self.finished_jobs() == self.records.len()
    }

    /// Time-weighted average utilization of one resource over the run.
    pub fn avg_utilization(&self, r: muri_workload::ResourceKind) -> f64 {
        if self.series.len() < 2 {
            return self.series.first().map_or(0.0, |s| s.utilization[r]);
        }
        let mut acc = 0.0;
        let mut total = 0.0;
        for w in self.series.windows(2) {
            let dt = w[1].time.since(w[0].time).as_secs_f64();
            acc += w[0].utilization[r] * dt;
            total += dt;
        }
        if total == 0.0 {
            self.series[0].utilization[r]
        } else {
            acc / total
        }
    }

    /// Average queue length over samples.
    pub fn avg_queue_length(&self) -> f64 {
        stats::mean(
            &self
                .series
                .iter()
                .map(|s| s.queue_length as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Export per-job records as CSV (`job_id,model,gpus,submit_s,
    /// start_s,finish_s,jct_s,attained_s,restarts,faults`).
    pub fn records_to_csv(&self) -> String {
        let mut out = String::from(
            "job_id,model,gpus,submit_s,start_s,finish_s,jct_s,attained_s,restarts,faults\n",
        );
        let opt =
            |t: Option<SimTime>| t.map_or(String::new(), |t| format!("{:.3}", t.as_secs_f64()));
        for r in &self.records {
            out.push_str(&format!(
                "{},{},{},{:.3},{},{},{},{:.3},{},{}\n",
                r.id.0,
                r.model.name(),
                r.num_gpus,
                r.submit.as_secs_f64(),
                opt(r.first_start),
                opt(r.finish),
                r.jct()
                    .map_or(String::new(), |d| format!("{:.3}", d.as_secs_f64())),
                r.attained.as_secs_f64(),
                r.restarts,
                r.faults
            ));
        }
        out
    }

    /// Export the sampled time series as CSV (`time_s,queue,running,
    /// used_gpus,blocking,io,cpu,gpu,net`).
    pub fn series_to_csv(&self) -> String {
        let mut out = String::from("time_s,queue,running,used_gpus,blocking,io,cpu,gpu,net\n");
        for s in &self.series {
            out.push_str(&format!(
                "{:.1},{},{},{},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                s.time.as_secs_f64(),
                s.queue_length,
                s.running_jobs,
                s.used_gpus,
                s.blocking_index,
                s.utilization[muri_workload::ResourceKind::Storage],
                s.utilization[muri_workload::ResourceKind::Cpu],
                s.utilization[muri_workload::ResourceKind::Gpu],
                s.utilization[muri_workload::ResourceKind::Network],
            ));
        }
        out
    }

    /// Average blocking index over samples with a non-empty queue.
    pub fn avg_blocking_index(&self) -> f64 {
        let xs: Vec<f64> = self
            .series
            .iter()
            .filter(|s| s.queue_length > 0)
            .map(|s| s.blocking_index)
            .collect();
        stats::mean(&xs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u32, submit: u64, finish: Option<u64>) -> JobRecord {
        JobRecord {
            id: JobId(id),
            model: ModelKind::ResNet18,
            num_gpus: 1,
            submit: SimTime::from_secs(submit),
            first_start: finish.map(|_| SimTime::from_secs(submit + 1)),
            finish: finish.map(SimTime::from_secs),
            attained: SimDuration::from_secs(10),
            iterations_done: 100,
            iterations_total: 100,
            restarts: 0,
            faults: 0,
        }
    }

    fn report(records: Vec<JobRecord>) -> SimReport {
        SimReport {
            policy: "test".into(),
            trace: "t".into(),
            makespan: records
                .iter()
                .filter_map(|r| r.finish)
                .max()
                .map_or(SimDuration::ZERO, |t| t.since(SimTime::ZERO)),
            records,
            series: Vec::new(),
            scheduling_passes: 0,
            events: 0,
        }
    }

    #[test]
    fn jct_math() {
        let r = record(1, 10, Some(25));
        assert_eq!(r.jct(), Some(SimDuration::from_secs(15)));
        assert_eq!(r.queueing_delay(), Some(SimDuration::from_secs(1)));
        let unfinished = record(2, 10, None);
        assert_eq!(unfinished.jct(), None);
    }

    #[test]
    fn aggregates() {
        let rep = report(vec![
            record(1, 0, Some(10)),
            record(2, 0, Some(30)),
            record(3, 0, None),
        ]);
        assert_eq!(rep.avg_jct_secs(), 20.0);
        assert_eq!(rep.p99_jct_secs(), 30.0);
        assert_eq!(rep.finished_jobs(), 2);
        assert!(!rep.all_finished());
        assert_eq!(rep.makespan_secs(), 30.0);
    }

    #[test]
    fn empty_report_is_well_defined() {
        let rep = report(Vec::new());
        assert_eq!(rep.avg_jct_secs(), 0.0);
        assert_eq!(rep.p99_jct_secs(), 0.0);
        assert!(rep.all_finished());
        assert_eq!(rep.avg_queue_length(), 0.0);
    }

    #[test]
    fn csv_exports_have_headers_and_rows() {
        let rep = report(vec![record(1, 0, Some(10)), record(2, 5, None)]);
        let records = rep.records_to_csv();
        assert!(records.starts_with("job_id,model,"));
        assert_eq!(records.lines().count(), 3);
        // Unfinished jobs leave finish/jct empty but keep the row arity.
        let last = records.lines().last().unwrap();
        assert_eq!(last.split(',').count(), 10, "{last}");
        let series = rep.series_to_csv();
        assert!(series.starts_with("time_s,"));
        assert_eq!(series.lines().count(), 1, "no samples, header only");
    }

    #[test]
    fn utilization_series_weighting() {
        let mut rep = report(Vec::new());
        let s = |t: u64, u: f64| SeriesSample {
            time: SimTime::from_secs(t),
            queue_length: 0,
            blocking_index: 0.0,
            utilization: ResourceVec::splat(u),
            running_jobs: 0,
            used_gpus: 0,
        };
        rep.series = vec![s(0, 1.0), s(2, 0.0), s(4, 0.0)];
        let u = rep.avg_utilization(muri_workload::ResourceKind::Gpu);
        assert!((u - 0.5).abs() < 1e-12);
    }
}
