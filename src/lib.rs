//! # muri
//!
//! A production-quality Rust reproduction of **"Multi-Resource
//! Interleaving for Deep Learning Training"** (Muri), SIGCOMM 2022.
//!
//! DL training jobs have a staged, iterative structure — storage IO for
//! data loading, CPU for preprocessing, GPU for propagation, network IO
//! for gradient synchronization — and jobs bottlenecked on *different*
//! resources can be phase-shifted onto the same GPUs so that each job
//! occupies a different resource at any instant. Muri turns that into a
//! cluster scheduler: pairwise interleaving efficiencies become edge
//! weights, maximum-weight (Blossom) matching picks who shares with whom,
//! and a multi-round algorithm generalizes to groups of up to four jobs.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`workload`] — time, resources, the Table 3 model zoo, jobs, traces,
//!   the Philly-like synthesizer, the (noisy) profiler;
//! * [`matching`] — maximum-weight matching (Blossom `O(n³)`, greedy, and
//!   an exact oracle for testing);
//! * [`cluster`] — machines, GPU allocation and node-minimizing placement,
//!   the worker monitor;
//! * [`interleave`] — Eq. 1–4 interleaving efficiency, stage-ordering
//!   enumeration, interleave groups, and a fine-grained per-GPU timeline
//!   executor;
//! * [`core`] — the scheduler: policies (FIFO … Tiresias, Themis, AntMan,
//!   Muri-S, Muri-L), the multi-round grouping algorithm, per-tick
//!   planning;
//! * [`sim`] — the discrete-event cluster simulator and the paper's
//!   metrics;
//! * [`experiments`] — one harness per paper table/figure.
//!
//! ## Quickstart
//!
//! ```
//! use muri::interleave::{GroupMember, InterleaveGroup, OrderingPolicy};
//! use muri::workload::{JobId, ModelKind};
//!
//! // Interleave the paper's four Table 2 jobs on one set of GPUs.
//! let members: Vec<GroupMember> = ModelKind::table2_models()
//!     .iter()
//!     .enumerate()
//!     .map(|(i, &m)| GroupMember { job: JobId(i as u32), profile: m.profile(16) })
//!     .collect();
//! let group = InterleaveGroup::form(members, OrderingPolicy::Best);
//! // Together the four jobs deliver ~2x the throughput of running them
//! // back to back (the paper's Table 2 measures 2.00x).
//! assert!(group.total_normalized_throughput() > 1.9);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use muri_cluster as cluster;
pub use muri_core as core;
pub use muri_experiments as experiments;
pub use muri_interleave as interleave;
pub use muri_matching as matching;
pub use muri_sim as sim;
pub use muri_workload as workload;
