//! Offline stand-in for the `rand` crate (0.8-compatible subset).
//!
//! Provides [`rngs::SmallRng`] (an xoshiro256** generator, the same
//! family the real `small_rng` feature uses), the [`Rng`] extension
//! trait with `gen`, `gen_bool`, and `gen_range` over integer and float
//! ranges, and [`SeedableRng::seed_from_u64`] seeded via SplitMix64 —
//! the full API surface this workspace exercises. Streams differ from
//! the real crate (no stability guarantee was relied on: the seed tests
//! assert determinism, not specific draws).

use std::ops::{Range, RangeInclusive};

/// Core RNG abstraction: a source of uniformly random 64-bit words.
pub trait RngCore {
    /// The next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw a sample from the standard distribution for `Self`.
    fn sample_standard(rng: &mut dyn RngCore) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// RNG implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut sm);
            }
            // xoshiro256** must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64(rng: &mut dyn RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire-style
/// rejection via widening multiply).
fn bounded_u64(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let threshold = bound.wrapping_neg() % bound;
    loop {
        let m = u128::from(rng.next_u64()) * u128::from(bound);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut dyn RngCore) -> f64 {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut dyn RngCore) -> f32 {
        unit_f64(rng) as f32
    }
}

impl Standard for u64 {
    fn sample_standard(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard(rng: &mut dyn RngCore) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = bounded_u64(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, span + 1);
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_int_ranges!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // Treat as half-open; the endpoint has measure zero.
                let u = unit_f64(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}
