//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API subset the workspace's benches use —
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`],
//! [`BenchmarkId`], `criterion_group!`, `criterion_main!` — measuring
//! simple wall-clock medians instead of criterion's statistical
//! analysis. When the binary is invoked with `--test` (as `cargo test`
//! does for harness-less bench targets), each benchmark body runs once
//! for correctness and no timing is collected.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Identifier of a parameterized benchmark, e.g. `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    test_mode: bool,
    samples: usize,
    median: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, keeping the median of several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        // One warm-up, then timed samples.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort();
        self.median = Some(times[times.len() / 2]);
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run a benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size,
            median: None,
        };
        f(&mut bencher);
        self.report(&id, bencher.median);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            test_mode: self.criterion.test_mode,
            samples: self.sample_size,
            median: None,
        };
        f(&mut bencher, input);
        self.report(&id, bencher.median);
        self
    }

    /// Finish the group (reporting happens per-benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, median: Option<Duration>) {
        if let Some(t) = median {
            println!("{}/{}: median {t:?}", self.name, id.id);
            // Machine-readable line for scripts/bench.sh to assemble
            // BENCH_grouping.json from.
            println!(
                "BENCH_JSON {{\"id\":\"{}/{}\",\"median_ns\":{}}}",
                self.name,
                id.id,
                t.as_nanos()
            );
        }
    }
}

/// Benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` invokes harness-less bench binaries with `--test`;
        // run each body once, untimed, so benches double as smoke tests.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
