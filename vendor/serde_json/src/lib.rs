//! Offline stand-in for `serde_json`, backed by the vendored `serde`
//! crate's [`Value`] model.
//!
//! Supports the workspace's usage: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and a re-export of [`Value`]. Floats round-trip because
//! Rust's `Display` for `f64` prints the shortest representation that
//! parses back to the same bits (the behaviour the real crate's
//! `float_roundtrip` feature guarantees).

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize a value to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into a value of type `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Serialize a value to the generic [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a generic [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        // Rust's Display prints the shortest string that round-trips; add
        // `.0` for integral floats so the value re-parses as a float,
        // matching serde_json's output.
        let s = f.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}, found `{:?}`",
                b as char,
                self.pos,
                self.peek().map(|b| b as char)
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected `{:?}` at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // Surrogate pair: expect a low surrogate.
                                if !(self.eat_keyword("\\u")) {
                                    return Err(Error::new("lone high surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(Error::new("invalid unicode escape")),
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a valid &str, so
                    // re-decode from the byte position.
                    let start = self.pos - 1;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| Error::new("truncated string"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}
