//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access and an empty cargo
//! registry, so the real `serde` cannot be fetched. This crate provides
//! the small API surface the workspace actually uses, built on a simple
//! self-describing [`Value`] tree instead of serde's visitor machinery:
//!
//! - [`Serialize`] / [`Deserialize`] traits (value-based),
//! - `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate (re-exported here, so `use serde::{Serialize,
//!   Deserialize}` works for both the traits and the derives),
//! - `#[serde(transparent)]` and `#[serde(default)]` attributes,
//! - impls for the std types used in the workspace (integers, floats,
//!   `bool`, `String`, `Option`, `Vec`, arrays, small tuples, maps).
//!
//! `serde_json` (also vendored) renders [`Value`] to JSON text and back.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing serialized value (the data model JSON maps onto).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers (and any signed integer source).
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    /// Floating point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `self` into a [`Value`] tree.
pub trait Serialize {
    /// Convert to the self-describing value model.
    fn to_value(&self) -> Value;
}

/// Reconstruct `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from the self-describing value model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility module mirroring `serde::de`.
pub mod de {
    /// In this value-based model every `Deserialize` is already owned.
    pub use crate::Deserialize as DeserializeOwned;
}

/// Compatibility module mirroring `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, got {}", got.kind())))
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => {
                        f as u64
                    }
                    ref other => return type_err(stringify!($t), other),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = u64::from_value(v)?;
        usize::try_from(n).map_err(|_| Error(format!("{n} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = i64::from(*self);
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) if n <= i64::MAX as u64 => n as i64,
                    Value::Float(f)
                        if f.fract() == 0.0
                            && f >= i64::MIN as f64
                            && f <= i64::MAX as f64 =>
                    {
                        f as i64
                    }
                    ref other => return type_err(stringify!($t), other),
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let n = i64::from_value(v)?;
        isize::try_from(n).map_err(|_| Error(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(f) => Ok(f),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            ref other => type_err("f64", other),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error(format!("expected single char, got {s:?}"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error(format!(
                        "expected {}-tuple, got array of {}",
                        $len,
                        items.len()
                    ))),
                    other => type_err("array (tuple)", other),
                }
            }
        }
    )+};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

/// Map keys are serialized as JSON object keys (strings); integer and
/// string-shaped keys both work, mirroring `serde_json`'s behaviour.
fn key_to_string(v: Value) -> Result<String, Error> {
    match v {
        Value::Str(s) => Ok(s),
        Value::UInt(n) => Ok(n.to_string()),
        Value::Int(n) => Ok(n.to_string()),
        Value::Bool(b) => Ok(b.to_string()),
        other => Err(Error(format!(
            "map key must be string-like, got {}",
            other.kind()
        ))),
    }
}

fn key_from_string<K: Deserialize>(s: &str) -> Result<K, Error> {
    // Try the key as a string first (unit-enum and string keys), then as
    // an integer (numeric keys round-tripped through JSON object keys).
    let as_str = Value::Str(s.to_owned());
    if let Ok(k) = K::from_value(&as_str) {
        return Ok(k);
    }
    if let Ok(n) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::UInt(n)) {
            return Ok(k);
        }
    }
    if let Ok(n) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Int(n)) {
            return Ok(k);
        }
    }
    Err(Error(format!("cannot reconstruct map key from {s:?}")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = key_to_string(k.to_value()).expect("unsupported map key type");
            entries.push((key, v.to_value()));
        }
        Value::Map(entries)
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = key_to_string(k.to_value()).expect("unsupported map key type");
                (key, v.to_value())
            })
            .collect();
        // Sort for deterministic output, like serde_json's BTreeMap-backed
        // default object representation.
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_string::<K>(k)?, V::from_value(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
