//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`Strategy`] trait
//! (ranges, tuples, `Just`, `prop_map`, `prop_flat_map`, `any`,
//! `prop_oneof!`, `collection::vec`), the [`proptest!`] test macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` macros. Cases are
//! generated from a deterministic per-test seed; there is **no
//! shrinking** — a failing case panics with the standard assertion
//! message. That trades debuggability for zero external dependencies in
//! an offline build.

pub mod strategy;
pub mod test_runner;

/// `proptest::collection` — collection strategies.
pub mod collection {
    pub use crate::strategy::{btree_set, vec, BTreeSetStrategy, SizeRange, VecStrategy};
}

/// `proptest::array` — fixed-size array strategies.
pub use crate::strategy::array;

/// `proptest::prelude` — the glob import test files use.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    /// `prop::collection::...` alias used by some proptest idioms.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Skip a case that does not satisfy a precondition. Without shrinking
/// there is no retry bookkeeping: the case is simply not executed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Choose uniformly between several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let mut __arms: ::std::vec::Vec<
            ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
        > = ::std::vec::Vec::new();
        $({
            let __s = $arm;
            __arms.push(::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                $crate::strategy::Strategy::generate(&__s, rng)
            }));
        })+
        $crate::strategy::Union::new(__arms)
    }};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategy = ( $($strat,)+ );
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let ( $($pat,)+ ) =
                    $crate::strategy::Strategy::generate(&__strategy, &mut __rng);
                // Mirror real proptest: the body runs in a function
                // returning `Result<(), TestCaseError>` so it may use
                // `?` and `return Ok(())`.
                let __outcome = (|| -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!("property failed (case {}): {}", __case, e);
                }
            }
        }
    )*};
}
