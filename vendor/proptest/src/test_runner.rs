//! Test-runner configuration and the deterministic RNG behind it.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A failed (or rejected) property case, mirroring
/// `proptest::test_runner::TestCaseError`.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl std::fmt::Display) -> Self {
        TestCaseError(msg.to_string())
    }

    /// A rejected case (no shrinking here, so same as a failure message).
    pub fn reject(msg: impl std::fmt::Display) -> Self {
        TestCaseError(format!("rejected: {msg}"))
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG handed to strategies. Deterministically seeded from the test
/// name so runs are reproducible and tests are decorrelated.
pub struct TestRng {
    /// Underlying generator (public for strategy implementations).
    pub rng: SmallRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name, mixed with a fixed project salt.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(h ^ 0x4d55_5249_5445_5354),
        }
    }
}
