//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filter generated values (retries until `f` accepts, bounded).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: Box::new(move |rng| self.generate(rng)),
        }
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Box<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: gave up satisfying `{}`", self.reason);
    }
}

/// Uniform choice between boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
}

impl<T> Union<T> {
    /// Build from generation closures, one per arm.
    pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng.gen_range(0..self.arms.len());
        (self.arms[i])(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9),
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.rng.gen::<f64>()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy over all values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Size specification for [`vec`]: an exact count or a range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub min: usize,
    /// Maximum length (inclusive).
    pub max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing vectors of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.rng.gen_range(self.size.min..=self.size.max);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`: vectors with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy producing ordered sets of values from an element strategy.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = std::collections::BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = rng.rng.gen_range(self.size.min..=self.size.max);
        let mut set = std::collections::BTreeSet::new();
        // Duplicates shrink the set; retry a bounded number of times to
        // reach the target size (mirrors proptest's collection retries).
        for _ in 0..target.saturating_mul(20).max(20) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        assert!(
            set.len() >= self.size.min,
            "btree_set: could not generate {} distinct elements",
            self.size.min
        );
        set
    }
}

/// `proptest::collection::btree_set`: sets with sizes drawn from `size`.
pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy producing `[S::Value; N]` from one element strategy.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    /// Four values from the same strategy.
    pub fn uniform4<S: Strategy>(element: S) -> UniformArray<S, 4> {
        UniformArray { element }
    }
}
