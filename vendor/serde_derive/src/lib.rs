//! Derive macros for the vendored `serde` stand-in.
//!
//! Since the offline build environment has no `syn`/`quote`, the derive
//! input is parsed directly from `proc_macro` token trees. The supported
//! subset matches what this workspace uses:
//!
//! - structs with named fields (plus `#[serde(default)]` per field),
//! - tuple structs (single-field newtypes serialize transparently, like
//!   real serde; multi-field ones as arrays),
//! - unit structs,
//! - enums whose variants are all unit variants (serialized as the
//!   variant name string, optionally with integer discriminants),
//! - `#[serde(transparent)]` containers,
//! - simple unbounded type generics (e.g. `struct ResourceVec<T>(...)`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: bool,
}

#[derive(Debug)]
enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<String>),
}

#[derive(Debug)]
struct Input {
    name: String,
    generics: Vec<String>,
    transparent: bool,
    body: Body,
}

/// Derive `serde::Serialize` for the supported item subset.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derive `serde::Deserialize` for the supported item subset.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_input(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens parse")
}

/// Scan one `#[...]` attribute group for `serde(<flag>)` markers.
fn serde_flags(group: &TokenStream, transparent: &mut bool, default: &mut bool) {
    let tokens: Vec<TokenTree> = group.clone().into_iter().collect();
    if tokens.len() != 2 {
        return;
    }
    let TokenTree::Ident(head) = &tokens[0] else {
        return;
    };
    if head.to_string() != "serde" {
        return;
    }
    let TokenTree::Group(args) = &tokens[1] else {
        return;
    };
    for tok in args.stream() {
        if let TokenTree::Ident(flag) = tok {
            match flag.to_string().as_str() {
                "transparent" => *transparent = true,
                "default" => *default = true,
                _ => {}
            }
        }
    }
}

/// Consume leading `#[...]` attributes starting at `i`, collecting serde
/// flags; returns the index of the first non-attribute token.
fn skip_attrs(
    tokens: &[TokenTree],
    mut i: usize,
    transparent: &mut bool,
    default: &mut bool,
) -> usize {
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            break;
        };
        if g.delimiter() != Delimiter::Bracket {
            break;
        }
        serde_flags(&g.stream(), transparent, default);
        i += 2;
    }
    i
}

/// Skip a `pub` / `pub(...)` visibility qualifier if present.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut transparent = false;
    let mut ignored = false;
    let mut i = skip_attrs(&tokens, 0, &mut transparent, &mut ignored);
    i = skip_vis(&tokens, i);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, got {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    i += 1;

    // Generics: `<` ident (`,` ident)* `>` — unbounded params only.
    let mut generics = Vec::new();
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1usize;
        let mut expect_param = true;
        while depth > 0 {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                Some(TokenTree::Ident(id)) if depth == 1 && expect_param => {
                    generics.push(id.to_string());
                    expect_param = false;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ':' && depth == 1 => {
                    return Err(format!(
                        "serde derive: bounded generics on `{name}` are not supported; \
                         implement Serialize/Deserialize manually"
                    ));
                }
                Some(_) => {}
                None => return Err(format!("unterminated generics on `{name}`")),
            }
            i += 1;
        }
    }

    // Skip a `where` clause if one appears before the body.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    let body = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Named(parse_named_fields(&g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::Tuple(count_tuple_fields(&g.stream()))
        }
        ("struct", _) => Body::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_unit_variants(&name, &g.stream())?)
        }
        (k, other) => return Err(format!("unsupported item `{k}` with body {other:?}")),
    };

    Ok(Input {
        name,
        generics,
        transparent,
        body,
    })
}

fn parse_named_fields(stream: &TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut transparent = false;
        let mut default = false;
        i = skip_attrs(&tokens, i, &mut transparent, &mut default);
        i = skip_vis(&tokens, i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after field `{name}`, got {other:?}")),
        }
        // Consume the type: everything until a comma at angle-depth 0.
        let mut depth = 0isize;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0isize;
    let mut count = 1;
    let mut saw_tokens_since_comma = false;
    for tok in &tokens {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if saw_tokens_since_comma {
                    count += 1;
                }
                saw_tokens_since_comma = false;
                continue;
            }
            _ => {}
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_unit_variants(name: &str, stream: &TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut t = false;
        let mut d = false;
        i = skip_attrs(&tokens, i, &mut t, &mut d);
        let variant = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name in `{name}`, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde derive: enum `{name}` has a data-carrying variant `{variant}`; \
                     only unit variants are supported — implement serde manually"
                ));
            }
            // Integer discriminant: `= <expr>` — consume to the comma.
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                while let Some(tok) = tokens.get(i) {
                    if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                        break;
                    }
                    i += 1;
                }
            }
            _ => {}
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(variant);
    }
    Ok(variants)
}

/// `impl<T: Bound, ...>` header and `Name<T, ...>` type for an item.
fn impl_header(input: &Input, bound: &str) -> (String, String) {
    if input.generics.is_empty() {
        (String::new(), input.name.clone())
    } else {
        let params: Vec<String> = input
            .generics
            .iter()
            .map(|g| format!("{g}: {bound}"))
            .collect();
        (
            format!("<{}>", params.join(", ")),
            format!("{}<{}>", input.name, input.generics.join(", ")),
        )
    }
}

fn gen_serialize(input: &Input) -> String {
    let (impl_generics, ty) = impl_header(input, "::serde::Serialize");
    let body = match &input.body {
        Body::Named(fields) if input.transparent && fields.len() == 1 => {
            format!("::serde::Serialize::to_value(&self.{})", fields[0].name)
        }
        Body::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({:?}), \
                         ::serde::Serialize::to_value(&self.{}))",
                        f.name, f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Body::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Body::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_owned(),
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "{}::{} => ::serde::Value::Str(::std::string::String::from({v:?})),",
                        input.name, v
                    )
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl{impl_generics} ::serde::Serialize for {ty} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let mut bound = "::serde::Deserialize".to_owned();
    // Named/tuple bodies move deserialized values into place; arrays of
    // generics additionally need the blanket `[T; N]` impl, which only
    // requires `Deserialize` — so the single bound suffices.
    let body = match &input.body {
        Body::Named(fields) if input.transparent && fields.len() == 1 => {
            format!(
                "::std::result::Result::Ok({name} {{ {}: ::serde::Deserialize::from_value(v)? }})",
                fields[0].name
            )
        }
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let missing = if f.default {
                        "::std::default::Default::default()".to_owned()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::Error(\
                             ::std::format!(\"missing field `{}` in {}\")))",
                            f.name, name
                        )
                    };
                    format!(
                        "{}: match v.get({:?}) {{\n\
                             ::std::option::Option::Some(f) => \
                                 ::serde::Deserialize::from_value(f)?,\n\
                             ::std::option::Option::None => {missing},\n\
                         }}",
                        f.name, f.name
                    )
                })
                .collect();
            if fields.iter().any(|f| f.default) {
                bound = "::serde::Deserialize + ::std::default::Default".to_owned();
            }
            format!(
                "match v {{\n\
                     ::serde::Value::Map(_) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                     other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                         \"expected object for {name}, got {{}}\", other.kind()))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Body::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Body::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Array(items) if items.len() == {n} => \
                         ::std::result::Result::Ok({name}({})),\n\
                     other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                         \"expected {n}-element array for {name}, got {{}}\", other.kind()))),\n\
                 }}",
                inits.join(", ")
            )
        }
        Body::Unit => {
            format!("::std::result::Result::Ok({name})")
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {}\n\
                         other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                             \"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                         \"expected string for {name}, got {{}}\", other.kind()))),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    let (impl_generics, ty) = impl_header(input, &bound);
    format!(
        "impl{impl_generics} ::serde::Deserialize for {ty} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
