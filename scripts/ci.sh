#!/bin/sh
# Offline CI gate for the Muri workspace. Runs the same three checks the
# repo treats as merge-blocking, in fail-fast order:
#
#   1. formatting        cargo fmt --all -- --check
#   2. lints             cargo clippy --workspace --all-targets -- -D warnings
#      (the lint set lives in [workspace.lints] in Cargo.toml + clippy.toml)
#   3. tests             cargo test --workspace -q, then again with the
#      `audit` feature so the muri-verify debug hooks and the audited
#      engine path are exercised
#   4. bench smoke       the criterion bench targets scripts/bench.sh
#      relies on, run with `--test` (each body executes once, untimed) so
#      a broken bench fails CI instead of the baseline workflow
#
# Everything is offline-safe: all dependencies are vendored under
# vendor/, so no network access is needed or attempted.

set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace -q (with scheduler/engine audit hooks)"
cargo test --workspace -q --features muri-sim/audit,muri-core/audit

echo "==> bench smoke (scalability + algorithms, --test mode)"
cargo bench -p muri-bench --bench scalability --bench algorithms -- --test

echo "ci: all checks passed"
