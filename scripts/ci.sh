#!/bin/sh
# Offline CI gate for the Muri workspace. Runs the same checks the
# repo treats as merge-blocking, in fail-fast order:
#
#   1. formatting        cargo fmt --all -- --check
#   2. lints             cargo clippy --workspace --all-targets -- -D warnings
#      (the lint set lives in [workspace.lints] in Cargo.toml + clippy.toml)
#   3. muri-lint         the workspace determinism & audit-coverage
#      scanner (rules D001-D005, C001, A001, S001 — see DESIGN.md
#      "Static analysis"); any violation fails the build (exit 3)
#   4. tests             cargo test --workspace -q, then again with the
#      `audit` feature so the muri-verify debug hooks and the audited
#      engine path are exercised
#   5. bench smoke       the criterion bench targets scripts/bench.sh
#      relies on (including the serve daemon bench), run with `--test`
#      (each body executes once, untimed) so a broken bench fails CI
#      instead of the baseline workflow
#   6. telemetry smoke   a 20-job simulation with all three telemetry
#      exporters enabled, then `muri telemetry-check` validates the
#      artifacts: the journal parses and its lifecycle ledger conserves
#      jobs, the Chrome trace is well-formed with monotonic timestamps,
#      and the Prometheus text round-trips the golden parser
#   7. fault smoke       a 20-job simulation under the machine-level
#      fault battery (machine faults + repair, a degraded machine,
#      periodic checkpointing) with the journal exported, then
#      `muri telemetry-check` proves the faulty run's lifecycle ledger
#      still conserves jobs
#   8. hostile smoke     the hostile-cluster scenario suite: a seeded
#      spot-eviction + heterogeneous-GPU simulation with the journal
#      exported and validated by `muri telemetry-check`, then an
#      audited `muri verify` replay with all four scenarios active
#      (spot, hetero, elastic, SLO) — zero violations required
#   9. pruning smoke     two checks on trace 2: at --scale 0.02 every
#      bucket fits the small-graph shortcut (n <= top_m + 1), so default
#      sparsification and --prune-top-m 0 must produce byte-identical
#      reports; at --scale 0.1 buckets are large enough that edges are
#      really dropped, so the run only has to complete cleanly — the
#      certificate bounds (but does not zero) the matching-weight
#      difference, and the report may legitimately differ from dense
#  10. sharded smoke     two checks on trace 2 at --scale 0.1: with one
#      giant forced shard and pruning off, the sharded planner builds
#      the full candidate graph and solves it exactly, so its report
#      must be byte-identical to the unsharded dense run; then an
#      audited `muri verify` replay with sharding forced must finish
#      with zero violations (the sharded plan's stated pair weights and
#      composed loss certificate both survive independent recomputation)
#  11. serve smoke       the always-on daemon end to end: boot
#      `muri serve` on an ephemeral port, drive it over HTTP with
#      `muri serve-load` (submit, poll to completion, fetch the
#      journal, shut down gracefully), validate the fetched journal
#      with `muri telemetry-check`, and require daemon exit code 0
#  12. serve crash smoke  durability end to end: boot a daemon with
#      `--state DIR`, submit load without waiting, SIGKILL it, restart
#      with `--recover` (the boot-time recovery-replay audit must
#      report clean), drive the recovered daemon to completion,
#      validate the journal, assert the idle daemon burns ~no CPU
#      (no busy-polling), and require a clean graceful exit
#
# `scripts/ci.sh --deep` additionally runs the core/matching test suites
# under Miri and a ThreadSanitizer build when a nightly toolchain with
# those components is installed; without one, each deep step prints a
# skip notice and the gate result is unaffected.
#
# Everything is offline-safe: all dependencies are vendored under
# vendor/, so no network access is needed or attempted.

set -eu

deep=0
for arg in "$@"; do
    case "$arg" in
        --deep) deep=1 ;;
        *) echo "usage: scripts/ci.sh [--deep]" >&2; exit 2 ;;
    esac
done

cd "$(dirname "$0")/.."

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> muri lint (workspace determinism & audit-coverage scan)"
cargo run -q -p muri-cli -- lint

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo test --workspace -q (with scheduler/engine audit hooks)"
cargo test --workspace -q --features muri-sim/audit,muri-core/audit

echo "==> bench smoke (scalability + algorithms + serve, --test mode)"
cargo bench -p muri-bench --bench scalability --bench algorithms --bench serve -- --test

echo "==> telemetry smoke (20-job sim, all three exporters, validated)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q -p muri-cli -- simulate muri-l --trace 1 --scale 0.02 \
    --journal "$tmpdir/journal.jsonl" \
    --metrics "$tmpdir/metrics.prom" \
    --chrome-trace "$tmpdir/trace.json" >/dev/null
cargo run -q -p muri-cli -- telemetry-check \
    --journal "$tmpdir/journal.jsonl" \
    --metrics "$tmpdir/metrics.prom" \
    --chrome-trace "$tmpdir/trace.json"

echo "==> fault smoke (machine faults + checkpointing, journal conserved)"
cargo run -q -p muri-cli -- simulate muri-l --trace 1 --scale 0.02 \
    --machine-mtbf 1800 --machine-mttr 300 --transient-fraction 0.5 \
    --degraded 1 --fault-seed 42 \
    --checkpoint-interval 120 --checkpoint-cost 5 \
    --journal "$tmpdir/fault_journal.jsonl" >/dev/null
cargo run -q -p muri-cli -- telemetry-check --journal "$tmpdir/fault_journal.jsonl"

echo "==> hostile smoke (spot+hetero journal conserved, 4-scenario audited verify)"
cargo run -q -p muri-cli -- simulate muri-l --trace 1 --scale 0.02 \
    --spot-machines 1 --spot-mtbe 900 --spot-warning 60 --spot-downtime 300 \
    --gpu-generations 2 --generation-gap 0.5 \
    --checkpoint-cost 5 --fault-seed 7 \
    --journal "$tmpdir/hostile_journal.jsonl" >/dev/null
cargo run -q -p muri-cli -- telemetry-check --journal "$tmpdir/hostile_journal.jsonl"
cargo run -q -p muri-cli -- verify muri-l --trace 1 --scale 0.02 \
    --spot-machines 1 --spot-mtbe 900 --spot-warning 60 --spot-downtime 300 \
    --gpu-generations 2 --generation-gap 0.5 \
    --elastic-fraction 0.25 --elastic-interval 900 \
    --slo-fraction 0.3 --slo-slack 2 \
    --checkpoint-cost 5 --fault-seed 7

echo "==> pruning smoke (small-bucket identity at 0.02, pruned run at 0.1)"
cargo run -q -p muri-cli -- simulate muri-l --trace 2 --scale 0.02 \
    >"$tmpdir/pruned.out" 2>/dev/null
cargo run -q -p muri-cli -- simulate muri-l --trace 2 --scale 0.02 --prune-top-m 0 \
    >"$tmpdir/dense.out" 2>/dev/null
if ! cmp -s "$tmpdir/pruned.out" "$tmpdir/dense.out"; then
    echo "ci: pruned simulation diverged from the dense baseline on" >&2
    echo "ci: small buckets, where the shortcut makes pruning a no-op:" >&2
    diff "$tmpdir/pruned.out" "$tmpdir/dense.out" >&2 || true
    exit 1
fi
cargo run -q -p muri-cli -- simulate muri-l --trace 2 --scale 0.1 >/dev/null 2>&1

echo "==> sharded smoke (one-shard identity vs dense, audited forced-shard run)"
cargo run -q -p muri-cli -- simulate muri-l --trace 2 --scale 0.1 --prune-top-m 0 \
    --shard-by force --shard-size 100000 --candidate-m 0 \
    >"$tmpdir/sharded.out" 2>/dev/null
cargo run -q -p muri-cli -- simulate muri-l --trace 2 --scale 0.1 --prune-top-m 0 \
    --shard-by off \
    >"$tmpdir/unsharded.out" 2>/dev/null
if ! cmp -s "$tmpdir/sharded.out" "$tmpdir/unsharded.out"; then
    echo "ci: one-shard sharded simulation diverged from the unsharded" >&2
    echo "ci: dense baseline, where the full candidate graph makes the" >&2
    echo "ci: sparse solve exact:" >&2
    diff "$tmpdir/sharded.out" "$tmpdir/unsharded.out" >&2 || true
    exit 1
fi
cargo run -q -p muri-cli -- verify muri-l --trace 2 --scale 0.1 --shard-by force

echo "==> serve smoke (daemon boot, HTTP load, journal conserved, clean exit)"
# Boot the daemon on an ephemeral port, drive it over HTTP with
# serve-load (submit, poll to completion, fetch the journal, request
# shutdown), validate the journal's lifecycle ledger, and require the
# daemon process itself to exit 0.
cargo build -q -p muri-cli
target/debug/muri serve --port 0 --time-scale 36000 --workers 2 \
    --journal "$tmpdir/serve_daemon_journal.jsonl" \
    >"$tmpdir/serve.log" 2>&1 &
serve_pid=$!
serve_addr=""
i=0
while [ $i -lt 100 ]; do
    serve_addr=$(sed -n 's#^muri-serve listening on http://##p' "$tmpdir/serve.log")
    [ -n "$serve_addr" ] && break
    if ! kill -0 "$serve_pid" 2>/dev/null; then
        echo "ci: serve daemon died before binding:" >&2
        cat "$tmpdir/serve.log" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$serve_addr" ]; then
    echo "ci: serve daemon never reported its address" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
cargo run -q -p muri-cli -- serve-load --addr "$serve_addr" \
    --jobs 6 --gpus 2 --iters 20 \
    --journal "$tmpdir/serve_journal.jsonl" --shutdown
cargo run -q -p muri-cli -- telemetry-check --journal "$tmpdir/serve_journal.jsonl"
if ! wait "$serve_pid"; then
    echo "ci: serve daemon exited non-zero:" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
fi

echo "==> serve crash smoke (SIGKILL mid-load, --recover replay, journal conserved)"
# Boot a durable daemon, submit load without waiting, SIGKILL it
# mid-flight, restart from the same state directory with --recover
# (which runs the recovery-replay audit before serving), drive the
# recovered daemon to completion, and validate the fetched journal.
# Finally assert the idle daemon burns ~no CPU (the event loop must
# sleep on its next deadline, not busy-poll).
wait_serve_addr() {
    # $1 = logfile, $2 = pid; prints the bound address or returns 1.
    _i=0
    while [ $_i -lt 100 ]; do
        _addr=$(sed -n 's#^muri-serve listening on http://##p' "$1")
        if [ -n "$_addr" ]; then
            printf '%s\n' "$_addr"
            return 0
        fi
        kill -0 "$2" 2>/dev/null || return 1
        sleep 0.1
        _i=$((_i + 1))
    done
    return 1
}
statedir="$tmpdir/serve_state"
target/debug/muri serve --port 0 --time-scale 36000 --workers 2 \
    --state "$statedir" \
    >"$tmpdir/crash1.log" 2>&1 &
crash_pid=$!
if ! crash_addr=$(wait_serve_addr "$tmpdir/crash1.log" "$crash_pid"); then
    echo "ci: durable serve daemon never reported its address:" >&2
    cat "$tmpdir/crash1.log" >&2
    exit 1
fi
cargo run -q -p muri-cli -- serve-load --addr "$crash_addr" \
    --jobs 6 --gpus 2 --iters 2000 --no-wait
kill -9 "$crash_pid"
wait "$crash_pid" 2>/dev/null || true

target/debug/muri serve --port 0 --time-scale 36000 --workers 2 \
    --state "$statedir" --recover \
    >"$tmpdir/crash2.log" 2>&1 &
recover_pid=$!
if ! recover_addr=$(wait_serve_addr "$tmpdir/crash2.log" "$recover_pid"); then
    echo "ci: recovered serve daemon never came back up:" >&2
    cat "$tmpdir/crash2.log" >&2
    exit 1
fi
if ! grep -q "recovery audit OK" "$tmpdir/crash2.log"; then
    echo "ci: recovered daemon did not report a clean recovery audit:" >&2
    cat "$tmpdir/crash2.log" >&2
    kill "$recover_pid" 2>/dev/null || true
    exit 1
fi
cargo run -q -p muri-cli -- serve-load --addr "$recover_addr" \
    --jobs 4 --gpus 1 --iters 20 \
    --journal "$tmpdir/crash_journal.jsonl"
cargo run -q -p muri-cli -- telemetry-check --journal "$tmpdir/crash_journal.jsonl"
if [ -r "/proc/$recover_pid/stat" ]; then
    cpu_before=$(awk '{print $14 + $15}' "/proc/$recover_pid/stat")
    sleep 2
    cpu_after=$(awk '{print $14 + $15}' "/proc/$recover_pid/stat")
    # An idle daemon that busy-polled at 2 ms would burn most of a core;
    # sleeping on the next event deadline keeps it near zero. Allow a
    # handful of scheduler ticks (USER_HZ is typically 100/sec) of slack.
    if [ $((cpu_after - cpu_before)) -gt 20 ]; then
        echo "ci: idle recovered daemon burned $((cpu_after - cpu_before)) CPU ticks over 2s — event loop is busy-polling" >&2
        kill "$recover_pid" 2>/dev/null || true
        exit 1
    fi
fi
cargo run -q -p muri-cli -- serve-load --addr "$recover_addr" \
    --jobs 0 --shutdown >/dev/null
if ! wait "$recover_pid"; then
    echo "ci: recovered serve daemon exited non-zero:" >&2
    cat "$tmpdir/crash2.log" >&2
    exit 1
fi

if [ "$deep" = 1 ]; then
    # Best-effort deep checks: both need a nightly toolchain, which the
    # offline image may not carry. Detection failures skip with a notice
    # rather than failing the gate; actual test failures still fail it.
    echo "==> deep: cargo miri test (muri-core, muri-matching)"
    if rustup run nightly cargo miri --version >/dev/null 2>&1; then
        rustup run nightly cargo miri test -p muri-core -p muri-matching -q
    else
        echo "ci: skipping Miri — no nightly toolchain with the miri component installed"
    fi

    echo "==> deep: ThreadSanitizer build (muri-core, muri-matching)"
    # -Zsanitizer=thread needs the std sources (-Zbuild-std), so both a
    # nightly toolchain and its rust-src component must be present.
    if rustup run nightly rustc --version >/dev/null 2>&1 &&
        rustup component list --toolchain nightly 2>/dev/null |
        grep -q "rust-src (installed)"; then
        RUSTFLAGS="-Zsanitizer=thread" \
            rustup run nightly cargo test -p muri-core -p muri-matching -q \
            -Zbuild-std --target "$(rustc -vV | sed -n 's/^host: //p')"
    else
        echo "ci: skipping ThreadSanitizer — no nightly toolchain with rust-src installed"
    fi
fi

echo "ci: all checks passed"
