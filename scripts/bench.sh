#!/bin/sh
# Benchmark-baseline workflow for the grouping pipeline (see the
# Performance section in DESIGN.md). Runs the `scalability`,
# `algorithms`, and `serve` criterion benches, scrapes the machine-readable
# `BENCH_JSON {"id":...,"median_ns":...}` lines the vendored criterion
# harness emits, and assembles `BENCH_grouping.json` at the repo root:
#
#   {
#     "baseline":  { ... },                            # verbatim copy of
#                          # results/bench_baseline.json — medians of the
#                          # serial pipeline at the optimization's
#                          # starting commit
#     "optimized": { "<group/bench id>": median_ns }   # this run
#   }
#
# Exits non-zero if the benches fail, a required benchmark id is missing
# from the run, any benchmark pinned in the baseline has disappeared
# from the harness, the sharded cold-start gate (10k under a second)
# fails, or the assembled JSON fails to serialize / parse.
#
#   scripts/bench.sh [--sizes 1k,10k,100k]
#
# --sizes sets the cluster-size axis of the sharded cold-start bench
# (scalability/grouping_plan_cold/<size>), exported to the harness as
# MURI_BENCH_SIZES. Default: 1k,10k. The 100k point costs a few minutes
# per run, so it is opt-in.

set -eu

cd "$(dirname "$0")/.."

SIZES="1k,10k"
while [ $# -gt 0 ]; do
    case "$1" in
        --sizes) [ $# -ge 2 ] || { echo "bench.sh: --sizes needs a value" >&2; exit 2; }
                 SIZES="$2"; shift 2 ;;
        --sizes=*) SIZES="${1#--sizes=}"; shift ;;
        *) echo "usage: scripts/bench.sh [--sizes 1k,10k,100k]" >&2; exit 2 ;;
    esac
done
export MURI_BENCH_SIZES="$SIZES"

OUT=BENCH_grouping.json
BASELINE=results/bench_baseline.json
RAW=$(mktemp)
trap 'rm -f "$RAW"' EXIT INT TERM

echo "==> cargo bench -p muri-bench --bench scalability --bench algorithms --bench serve (cold-start sizes: $SIZES)"
cargo bench -p muri-bench --bench scalability --bench algorithms --bench serve | tee "$RAW"

if ! [ -f "$BASELINE" ]; then
    echo "bench.sh: missing $BASELINE (baseline medians must be checked in)" >&2
    exit 1
fi

if ! grep -q '^BENCH_JSON ' "$RAW"; then
    echo "bench.sh: benches emitted no BENCH_JSON lines" >&2
    exit 1
fi

# Assemble the output: the baseline file verbatim, then this run's
# medians keyed by benchmark id.
if ! grep '^BENCH_JSON ' "$RAW" | awk -v baseline="$BASELINE" -v sizes="$SIZES" '
    BEGIN {
        printf "{\n  \"baseline\": "
        first = 1
        while ((getline line < baseline) > 0) {
            if (first) { printf "%s\n", line; first = 0 }
            else       { printf "  %s\n", line }
        }
        close(baseline)
        if (first) exit 1   # baseline unreadable
        printf "  ,\n  \"cold_start_sizes\": \"%s\",\n  \"optimized\": {\n", sizes
    }
    {
        sub(/^BENCH_JSON /, "")
        if (match($0, /"id":"[^"]*"/) == 0) exit 1
        id = substr($0, RSTART + 6, RLENGTH - 7)
        if (match($0, /"median_ns":[0-9]+/) == 0) exit 1
        ns = substr($0, RSTART + 12, RLENGTH - 12)
        entries[++n] = "    \"" id "\": " ns
    }
    END {
        if (n == 0) exit 1
        for (i = 1; i <= n; i++) printf "%s%s\n", entries[i], (i < n ? "," : "")
        print "  }"
        print "}"
    }
' > "$OUT"; then
    echo "bench.sh: failed to serialize $OUT" >&2
    rm -f "$OUT"
    exit 1
fi

# Every id the acceptance criteria track must be present in this run,
# including one sharded cold-start point per size on the --sizes axis.
required_keys='scalability/grouping_plan/500
scalability/grouping_plan/1000
scalability/grouping_plan_cold_dense/1000
scalability/grouping_plan_cold_pruned/1000
scalability/plan_schedule_1000_jobs_64gpus
blossom/max_weight_matching/16
blossom/max_weight_matching/64
blossom/max_weight_matching/128
blossom/max_weight_matching/256
grouping/multi_round/128
grouping/capacity_aware_backlog
serve/submit_http
serve/placement_p99
serve/overload_admit_p99'
for size in $(printf '%s' "$SIZES" | tr ',' ' '); do
    required_keys="$required_keys
scalability/grouping_plan_cold/$size"
done
for key in $required_keys; do
    if ! grep -q "\"$key\":" "$OUT"; then
        echo "bench.sh: $OUT is missing required benchmark \"$key\"" >&2
        exit 1
    fi
done

# Every benchmark pinned in the baseline must still exist in the
# harness. A bench that silently disappears (renamed, dropped from a
# criterion_group!, file deleted) would otherwise make the baseline
# comparison vacuous — fail loudly instead.
baseline_keys=$(grep -o '"[^"]*": *[0-9]' "$BASELINE" | sed 's/": *[0-9]$//; s/^"//' | grep '/' || true)
if [ -z "$baseline_keys" ]; then
    echo "bench.sh: could not extract any benchmark ids from $BASELINE" >&2
    exit 1
fi
for key in $baseline_keys; do
    if ! grep -q "\"$key\":" "$OUT"; then
        echo "bench.sh: benchmark \"$key\" is pinned in $BASELINE but absent from this run — the harness lost it" >&2
        exit 1
    fi
done

# The sparsifier's reason to exist: cold-start pruned grouping at
# n = 1000 must beat the dense solver by at least 5x.
dense_ns=$(grep -o '"scalability/grouping_plan_cold_dense/1000": [0-9]*' "$OUT" | grep -o '[0-9]*$')
pruned_ns=$(grep -o '"scalability/grouping_plan_cold_pruned/1000": [0-9]*' "$OUT" | grep -o '[0-9]*$')
if [ -z "$dense_ns" ] || [ -z "$pruned_ns" ] || [ "$pruned_ns" -eq 0 ]; then
    echo "bench.sh: could not extract cold-start dense/pruned medians from $OUT" >&2
    exit 1
fi
if [ $((dense_ns / pruned_ns)) -lt 5 ]; then
    echo "bench.sh: cold-start pruned grouping is only $((dense_ns / pruned_ns))x faster than dense (need >= 5x): dense=${dense_ns}ns pruned=${pruned_ns}ns" >&2
    exit 1
fi
echo "bench.sh: cold-start pruning speedup $((dense_ns / pruned_ns))x (dense=${dense_ns}ns pruned=${pruned_ns}ns)"

# Tentpole gate: sharded cold-start planning at 10k jobs must land
# under a second (enforced whenever the 10k point is on the axis).
case ",$SIZES," in
    *,10k,*)
        cold10k_ns=$(grep -o '"scalability/grouping_plan_cold/10k": [0-9]*' "$OUT" | grep -o '[0-9]*$')
        if [ -z "$cold10k_ns" ]; then
            echo "bench.sh: could not extract the 10k sharded cold-start median from $OUT" >&2
            exit 1
        fi
        if [ "$cold10k_ns" -ge 1000000000 ]; then
            echo "bench.sh: sharded cold-start at 10k took ${cold10k_ns}ns (must be < 1s)" >&2
            exit 1
        fi
        echo "bench.sh: sharded cold-start at 10k in ${cold10k_ns}ns"
        ;;
esac

# Service gates: the daemon must take submissions faster than 10k/sec
# (median HTTP submit round-trip under 100 µs), place an uncontended
# job within 10 ms of wall clock at the 99th percentile, and keep the
# admitted-submit p99 under 10 ms even while saturated and refusing a
# storm of over-limit submissions (the overload bench).
submit_ns=$(grep -o '"serve/submit_http": [0-9]*' "$OUT" | grep -o '[0-9]*$')
p99_ns=$(grep -o '"serve/placement_p99": [0-9]*' "$OUT" | grep -o '[0-9]*$')
overload_ns=$(grep -o '"serve/overload_admit_p99": [0-9]*' "$OUT" | grep -o '[0-9]*$')
if [ -z "$submit_ns" ] || [ -z "$p99_ns" ] || [ -z "$overload_ns" ]; then
    echo "bench.sh: could not extract the serve medians from $OUT" >&2
    exit 1
fi
if [ "$submit_ns" -ge 100000 ]; then
    echo "bench.sh: HTTP submit median ${submit_ns}ns (must be < 100000ns for 10k submissions/sec)" >&2
    exit 1
fi
if [ "$p99_ns" -ge 10000000 ]; then
    echo "bench.sh: placement p99 ${p99_ns}ns (must be < 10ms)" >&2
    exit 1
fi
if [ "$overload_ns" -ge 10000000 ]; then
    echo "bench.sh: admitted-submit p99 under overload ${overload_ns}ns (must be < 10ms)" >&2
    exit 1
fi
echo "bench.sh: serve submit median ${submit_ns}ns ($((1000000000 / submit_ns)) submissions/sec), placement p99 ${p99_ns}ns, overload admit p99 ${overload_ns}ns"

# Parse-check the result with whatever JSON tool the host has; fall back
# to accepting the structural checks above on a bare container.
if command -v python3 >/dev/null 2>&1; then
    if ! python3 -c 'import json,sys; json.load(open(sys.argv[1]))' "$OUT"; then
        echo "bench.sh: $OUT is not valid JSON" >&2
        exit 1
    fi
elif command -v jq >/dev/null 2>&1; then
    if ! jq -e . "$OUT" >/dev/null; then
        echo "bench.sh: $OUT is not valid JSON" >&2
        exit 1
    fi
fi

echo "bench.sh: wrote $OUT"
