//! Quickstart: interleave four DL jobs on one set of GPUs and see why it
//! pays — the paper's Table 2 example, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use muri::interleave::{GroupMember, InterleaveGroup, OrderingPolicy};
use muri::workload::{JobId, ModelKind, ResourceKind};

fn main() {
    println!("Muri quickstart — multi-resource interleaving of four DL jobs\n");

    // The paper's four motivating jobs (Table 2): each bottlenecked on a
    // different resource when trained on 16 GPUs.
    let models = ModelKind::table2_models();
    println!(
        "{:<12} {:>10} {:>12} {:>30}",
        "model", "bottleneck", "iter time", "stage profile"
    );
    for m in models {
        let p = m.profile(16);
        println!(
            "{:<12} {:>10} {:>12} {:>30}",
            m.name(),
            m.declared_bottleneck().to_string(),
            p.iteration_time().to_string(),
            p.to_string(),
        );
    }

    // Form an interleave group: the scheduler enumerates stage orderings
    // (Fig. 6) and phase-shifts the jobs so their heavy stages dovetail.
    let members: Vec<GroupMember> = models
        .iter()
        .enumerate()
        .map(|(i, &m)| GroupMember {
            job: JobId(i as u32),
            profile: m.profile(16),
        })
        .collect();
    let group = InterleaveGroup::form(members, OrderingPolicy::Best);

    println!("\ngroup iteration time (Eq. 3): {}", group.iteration_time());
    println!("interleaving efficiency γ (Eq. 4): {:.2}", group.efficiency);
    println!("\nper-job normalized throughput (vs running alone):");
    for (i, m) in models.iter().enumerate() {
        println!("  {:<12} {:.2}", m.name(), group.normalized_throughput(i));
    }
    println!(
        "aggregate: {:.2}x the throughput of running the four jobs back to back",
        group.total_normalized_throughput()
    );
    println!("(the paper's testbed measures 2.00x for this group — Table 2)");

    println!("\nresource busy fractions inside the group:");
    for r in ResourceKind::ALL {
        println!(
            "  {:<8} {:>5.1}%",
            r.to_string(),
            group.busy_fraction(r) * 100.0
        );
    }

    println!("\nlockstep schedule, two iterations (A=ShuffleNet B=A2C C=GPT-2 D=VGG16):");
    print!("{}", muri::interleave::render_schedule(&group, 2, 36));
}
