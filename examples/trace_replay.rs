#![allow(clippy::unwrap_used, clippy::expect_used)] // example code: panics surface misuse

//! Trace replay: synthesize a Philly-like trace, round-trip it through
//! CSV (the interchange format for real traces), carve out the busiest
//! window, and replay it under Muri-L with the Fig. 8 metric series.
//!
//! ```text
//! cargo run --release --example trace_replay
//! ```

use muri::core::{PolicyKind, SchedulerConfig};
use muri::sim::{simulate, SimConfig};
use muri::workload::{philly_like_trace, ResourceKind, Trace};

fn main() {
    // Trace 1 of the evaluation (992 jobs, Philly-like shape).
    let trace = philly_like_trace(1, 1.0);
    println!(
        "trace {}: {} jobs, load {:.2}, span {}",
        trace.name,
        trace.len(),
        trace.offered_load(64),
        trace.submission_span()
    );

    // CSV round trip — how you would feed a real trace in.
    let csv = trace.to_csv();
    let restored = Trace::from_csv(trace.name.clone(), &csv).expect("own CSV must parse");
    assert_eq!(trace, restored);
    println!("CSV round-trip OK ({} bytes)", csv.len());

    // The paper's testbed selection: the busiest 400-job window.
    let window = trace.busiest_window(400);
    println!(
        "busiest window: {} jobs over {} (load {:.2})\n",
        window.len(),
        window.submission_span(),
        window.offered_load(64)
    );

    // Replay under Muri-L and print a downsampled Fig. 8-style series.
    let cfg = SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriL));
    let report = simulate(&window, &cfg);
    println!(
        "Muri-L: avg JCT {:.0}s, p99 {:.0}s, makespan {:.1}h, all finished: {}",
        report.avg_jct_secs(),
        report.p99_jct_secs(),
        report.makespan_secs() / 3600.0,
        report.all_finished()
    );
    println!(
        "\n{:>8} {:>6} {:>6} {:>9} {:>6} {:>6} {:>6}",
        "t", "queue", "run", "blocking", "io", "cpu", "gpu"
    );
    let step = (report.series.len() / 20).max(1);
    for s in report.series.iter().step_by(step) {
        println!(
            "{:>7.1}h {:>6} {:>6} {:>9.2} {:>6.2} {:>6.2} {:>6.2}",
            s.time.as_secs_f64() / 3600.0,
            s.queue_length,
            s.running_jobs,
            s.blocking_index,
            s.utilization[ResourceKind::Storage],
            s.utilization[ResourceKind::Cpu],
            s.utilization[ResourceKind::Gpu],
        );
    }
}
