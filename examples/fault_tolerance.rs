//! Fault tolerance: inject executor faults (§5: "when a fault occurs,
//! the executor will report the error information to the worker monitor
//! and terminate the training process. The related DL job will be pushed
//! back to the job queue") and watch the scheduler absorb them.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use muri::cluster::ClusterSpec;
use muri::core::{PolicyKind, SchedulerConfig};
use muri::sim::{simulate, FaultConfig, SimConfig};
use muri::workload::{SimDuration, SynthConfig};

fn main() {
    let trace = SynthConfig {
        name: "faulty".into(),
        num_jobs: 120,
        seed: 99,
        duration_median_secs: 600.0,
        duration_sigma: 1.0,
        load_reference_gpus: 16,
        target_load: 1.2,
        gpu_dist: muri::workload::GpuDistribution::default().capped(8),
        ..SynthConfig::default()
    }
    .generate();

    println!("workload: {} jobs on 16 GPUs under Muri-L\n", trace.len());
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>8} {:>9}",
        "MTBF per running job", "avg JCT", "p99 JCT", "makespan", "faults", "restarts"
    );
    for mtbf_mins in [0u64, 240, 60, 15] {
        let mut cfg = SimConfig {
            cluster: ClusterSpec::with_machines(2),
            ..SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriL))
        };
        cfg.faults = FaultConfig {
            mtbf: (mtbf_mins > 0).then(|| SimDuration::from_mins(mtbf_mins)),
            seed: 5,
            ..FaultConfig::default()
        };
        let r = simulate(&trace, &cfg);
        assert!(r.all_finished(), "faults must never lose a job");
        let faults: u32 = r.records.iter().map(|j| j.faults).sum();
        let restarts: u32 = r.records.iter().map(|j| j.restarts).sum();
        println!(
            "{:<22} {:>9.0}s {:>9.0}s {:>9.1}h {:>8} {:>9}",
            if mtbf_mins == 0 {
                "none".to_string()
            } else {
                format!("{mtbf_mins} min")
            },
            r.avg_jct_secs(),
            r.p99_jct_secs(),
            r.makespan_secs() / 3600.0,
            faults,
            restarts
        );
    }
    println!("\nEvery job finishes under every fault rate: faulted jobs return to");
    println!("the queue with their completed iterations intact and are regrouped.");
}
