//! Cluster scheduling: run the same bursty workload under six schedulers
//! on the paper's 64-GPU testbed and compare the metrics the paper
//! reports (average JCT, makespan, tail JCT, queue length).
//!
//! ```text
//! cargo run --release --example cluster_scheduling
//! ```

use muri::cluster::ClusterSpec;
use muri::core::{PolicyKind, SchedulerConfig};
use muri::sim::{simulate, SimConfig};
use muri::workload::SynthConfig;

fn main() {
    // A 600-job bursty workload at ~1.4x offered load on 64 GPUs.
    let trace = SynthConfig {
        name: "demo".into(),
        num_jobs: 600,
        seed: 7,
        duration_median_secs: 1200.0,
        duration_sigma: 1.2,
        target_load: 1.4,
        ..SynthConfig::default()
    }
    .generate();
    println!(
        "workload: {} jobs, offered load {:.2} on 64 GPUs, submission span {}\n",
        trace.len(),
        trace.offered_load(64),
        trace.submission_span()
    );

    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>10} {:>9}",
        "policy", "avg JCT", "p99 JCT", "makespan", "avg queue", "restarts"
    );
    for policy in [
        PolicyKind::Srtf,
        PolicyKind::Srsf,
        PolicyKind::Tiresias,
        PolicyKind::Themis,
        PolicyKind::AntMan,
        PolicyKind::MuriS,
        PolicyKind::MuriL,
    ] {
        let cfg = SimConfig {
            cluster: ClusterSpec::paper_testbed(),
            ..SimConfig::testbed(SchedulerConfig::preset(policy))
        };
        let r = simulate(&trace, &cfg);
        assert!(r.all_finished(), "{policy:?} left jobs unfinished");
        let restarts: u32 = r.records.iter().map(|j| j.restarts).sum();
        println!(
            "{:<10} {:>11.0}s {:>11.0}s {:>11.1}h {:>10.1} {:>9}",
            policy.name(),
            r.avg_jct_secs(),
            r.p99_jct_secs(),
            r.makespan_secs() / 3600.0,
            r.avg_queue_length(),
            restarts
        );
    }
    println!("\nMuri-S/Muri-L pack complementary jobs onto shared GPUs in time;");
    println!("the win is largest against the duration-unaware baselines.");
}
