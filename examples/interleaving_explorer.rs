#![allow(clippy::unwrap_used, clippy::expect_used)] // example code: panics surface misuse

//! Interleaving explorer: compare the closed-form group model (Eq. 3,
//! what the scheduler reasons with) against the fine-grained timeline
//! executor (what actually runs) for every pair of models. Eq. 3 phases
//! jobs in lockstep, so it is a *conservative upper bound*: the
//! executor's work-conserving resource queues can only run at or below
//! the predicted group iteration time. This is the reproduction's analog
//! of the paper's simulator-vs-testbed fidelity check.
//!
//! ```text
//! cargo run --release --example interleaving_explorer
//! ```

use muri::interleave::{
    choose_ordering, run_timeline, stagger_delays, OrderingPolicy, TimelineJob,
};
use muri::workload::{JobId, ModelKind, SimDuration};

fn main() {
    println!("pairwise interleaving: Eq. 3 prediction vs timeline execution\n");
    println!(
        "{:<24} {:>10} {:>10} {:>8}",
        "pair", "Eq.3 T", "timeline T", "margin"
    );
    let iterations = 120;
    let mut worst: f64 = 0.0;
    for (i, a) in ModelKind::ALL.iter().enumerate() {
        for b in ModelKind::ALL.iter().skip(i + 1) {
            let profiles = [a.profile(16), b.profile(16)];
            let ordering = choose_ordering(&profiles, OrderingPolicy::Best);
            let delays = stagger_delays(&profiles, &ordering.offsets);
            let jobs: Vec<TimelineJob> = profiles
                .iter()
                .zip(delays)
                .enumerate()
                .map(|(j, (&profile, initial_delay))| TimelineJob {
                    id: JobId(j as u32),
                    profile,
                    slots: vec![0],
                    initial_delay,
                    iterations,
                })
                .collect();
            let run = run_timeline(&jobs, 1, SimDuration::from_hours(12));
            // The slower member's average iteration time is the realized
            // group cadence.
            let realized = (0..2)
                .filter_map(|j| run.avg_iteration_time(&jobs, j))
                .max()
                .expect("both jobs finish")
                .as_secs_f64();
            let predicted = ordering.iteration_time.as_secs_f64();
            assert!(
                realized <= predicted * 1.02,
                "executor must not exceed the lockstep bound: {realized} vs {predicted}"
            );
            let err = (predicted - realized) / predicted;
            worst = worst.max(err);
            println!(
                "{:<24} {:>9.3}s {:>9.3}s {:>7.1}%",
                format!("{} + {}", a.name(), b.name()),
                predicted,
                realized,
                err * 100.0
            );
        }
    }
    println!(
        "\nEq. 3 held as an upper bound for every pair; largest slack {:.1}%\n\
         (the scheduler's estimates are safe: real groups only run faster)",
        worst * 100.0
    );
}
