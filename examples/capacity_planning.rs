//! Capacity planning: a downstream use of the library beyond the paper —
//! sweep cluster sizes for a fixed workload and find the smallest cluster
//! that meets an average-JCT target under each scheduler. Interleaving
//! buys real hardware: Muri hits the target with fewer machines.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use muri::cluster::ClusterSpec;
use muri::core::{PolicyKind, SchedulerConfig};
use muri::sim::{simulate, SimConfig};
use muri::workload::SynthConfig;

fn main() {
    let trace = SynthConfig {
        name: "plan".into(),
        num_jobs: 300,
        seed: 4242,
        duration_median_secs: 900.0,
        duration_sigma: 1.2,
        load_reference_gpus: 32,
        target_load: 1.3,
        gpu_dist: muri::workload::GpuDistribution::default().capped(8),
        ..SynthConfig::default()
    }
    .generate();
    let target_jct_secs = 4_000.0;
    println!(
        "workload: {} jobs ({:.0} GPU-hours); target avg JCT <= {:.0}s\n",
        trace.len(),
        trace.total_service().as_secs_f64() / 3600.0,
        target_jct_secs
    );
    println!(
        "{:<10} avg JCT by cluster size (machines x 8 GPUs)",
        "policy"
    );
    let sizes = [2u32, 3, 4, 5, 6, 8];
    for policy in [PolicyKind::Srsf, PolicyKind::Tiresias, PolicyKind::MuriL] {
        let mut cells = Vec::new();
        let mut first_fit: Option<u32> = None;
        for &machines in &sizes {
            let cfg = SimConfig {
                cluster: ClusterSpec::with_machines(machines),
                ..SimConfig::testbed(SchedulerConfig::preset(policy))
            };
            let r = simulate(&trace, &cfg);
            let jct = r.avg_jct_secs();
            let mark = if jct <= target_jct_secs { "*" } else { " " };
            if jct <= target_jct_secs && first_fit.is_none() {
                first_fit = Some(machines);
            }
            cells.push(format!("{machines}m:{jct:>6.0}s{mark}"));
        }
        println!(
            "{:<10} {}  -> needs {}",
            policy.name(),
            cells.join("  "),
            first_fit.map_or("more than 8 machines".to_string(), |m| format!(
                "{m} machines"
            ))
        );
    }
    println!("\n(* = meets the SLO; interleaving reaches it on less hardware)");
}
