#![allow(clippy::unwrap_used, clippy::expect_used)] // test code: panics are failures

//! Serialization stability: every public configuration and report type
//! must round-trip through JSON (configs are part of the public API —
//! users persist them alongside results for reproducibility).

use muri::cluster::ClusterSpec;
use muri::core::{GroupingConfig, PolicyKind, SchedulerConfig};
use muri::interleave::OrderingPolicy;
use muri::sim::{FaultConfig, SimConfig};
use muri::workload::{philly_like_trace, ProfilerConfig, SimDuration, SynthConfig};

fn roundtrip<T>(value: &T) -> T
where
    T: serde::Serialize + serde::de::DeserializeOwned,
{
    let json = serde_json::to_string(value).expect("serializes");
    serde_json::from_str(&json).expect("deserializes")
}

#[test]
fn scheduler_config_roundtrips() {
    for policy in [PolicyKind::MuriS, PolicyKind::AntMan, PolicyKind::Gittins] {
        let cfg = SchedulerConfig::preset(policy);
        assert_eq!(roundtrip(&cfg), cfg);
    }
    let mut custom = SchedulerConfig::preset(PolicyKind::MuriL);
    custom.grouping = GroupingConfig {
        max_group_size: 3,
        ordering: OrderingPolicy::Worst,
        min_efficiency: 0.25,
        capacity_aware: false,
        ..GroupingConfig::default()
    };
    custom.interval = SimDuration::from_mins(10);
    assert_eq!(roundtrip(&custom), custom);
}

#[test]
fn sim_config_roundtrips() {
    let mut cfg = SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriS));
    cfg.cluster = ClusterSpec::with_machines(3);
    cfg.profiler = ProfilerConfig::with_noise(0.4);
    cfg.faults = FaultConfig {
        mtbf: Some(SimDuration::from_hours(2)),
        seed: 99,
        machine_mtbf: Some(SimDuration::from_hours(6)),
        machine_mttr: SimDuration::from_mins(10),
        transient_fraction: 0.25,
        degraded_machines: 1,
        degraded_slowdown: 1.75,
        ..FaultConfig::default()
    };
    cfg.checkpoint = muri::sim::CheckpointConfig {
        interval: Some(SimDuration::from_mins(5)),
        cost: SimDuration::from_secs(10),
    };
    cfg.cross_machine_net_penalty = 0.2;
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn json_fault_plan_defaults_for_old_payloads() {
    // A FaultPlan serialized before the machine-level fault domains
    // existed must still parse (serde defaults keep every new feature
    // off).
    let legacy = r#"{"mtbf":7200000000,"seed":99}"#;
    let plan: FaultConfig = serde_json::from_str(legacy).expect("legacy parses");
    assert_eq!(plan.mtbf, Some(SimDuration::from_hours(2)));
    assert_eq!(plan.machine_mtbf, None);
    assert_eq!(plan.degraded_machines, 0);
}

#[test]
fn synth_config_roundtrips() {
    let cfg = SynthConfig {
        name: "rt".into(),
        num_jobs: 77,
        burst_fraction: 0.4,
        diurnal_amplitude: 0.3,
        ..SynthConfig::default()
    };
    assert_eq!(roundtrip(&cfg), cfg);
}

#[test]
fn traces_roundtrip_via_json_and_csv() {
    let trace = philly_like_trace(2, 0.02);
    assert_eq!(roundtrip(&trace), trace);
    let csv = trace.to_csv();
    let back = muri::workload::Trace::from_csv(trace.name.clone(), &csv).expect("csv");
    assert_eq!(back, trace);
}

#[test]
fn experiment_reports_roundtrip() {
    let report = muri::experiments::run_experiment("table2", muri::experiments::Scale(1.0))
        .expect("known experiment");
    assert_eq!(roundtrip(&report), report);
}

#[test]
fn json_profile_mode_defaults_for_old_payloads() {
    // A JobSpec serialized before `profile_mode` existed must still parse
    // (serde default).
    let legacy = r#"{"id":3,"model":"Gpt2","num_gpus":2,"iterations":50,"submit_time":0}"#;
    let spec: muri::workload::JobSpec = serde_json::from_str(legacy).expect("legacy parses");
    assert_eq!(spec.profile_mode, muri::workload::ProfileMode::Reference);
}
