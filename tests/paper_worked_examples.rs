//! The paper's worked examples, verified end-to-end through the public
//! facade API: Fig. 4's efficiencies, Fig. 5's matching, Fig. 6's
//! orderings, Table 2's normalized throughputs, and the §2.1 motivating
//! example.

use muri::interleave::{
    pair_efficiency, pair_efficiency_two_resources, pair_iteration_time_two_resources, GroupMember,
    InterferenceModel, InterleaveGroup, OrderingPolicy,
};
use muri::matching::{maximum_weight_matching, weight_from_f64, DenseGraph};
use muri::workload::{JobId, ModelKind, SimDuration, StageProfile};

fn secs(s: u64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Fig. 4's jobs: A and C are CPU-heavy (2 CPU + 1 GPU); B and D are
/// GPU-heavy (1 CPU + 2 GPU).
fn fig4_jobs() -> [StageProfile; 4] {
    let cpu_heavy = StageProfile::new(SimDuration::ZERO, secs(2), secs(1), SimDuration::ZERO);
    let gpu_heavy = StageProfile::new(SimDuration::ZERO, secs(1), secs(2), SimDuration::ZERO);
    [cpu_heavy, gpu_heavy, cpu_heavy, gpu_heavy] // A, B, C, D
}

#[test]
fn figure4_pair_efficiencies_match_paper() {
    let [a, b, c, _] = fig4_jobs();
    // γ(A,B) = 1 (perfect overlap), γ(A,C) = 0.75 — the paper's numbers.
    let gamma_ab = pair_efficiency(&a, &b, OrderingPolicy::Best);
    let gamma_ac = pair_efficiency(&a, &c, OrderingPolicy::Best);
    assert!((gamma_ab - 1.0).abs() < 1e-9, "γ(A,B) = {gamma_ab}");
    assert!((gamma_ac - 0.75).abs() < 1e-9, "γ(A,C) = {gamma_ac}");
    // And via the literal Eq. 1/2 forms:
    assert_eq!(
        pair_iteration_time_two_resources((secs(2), secs(1)), (secs(1), secs(2))),
        secs(3)
    );
    assert!(
        (pair_efficiency_two_resources((secs(2), secs(1)), (secs(2), secs(1))) - 0.75).abs() < 1e-9
    );
}

#[test]
fn figure5_matching_selects_plan_one() {
    // Fig. 5: nodes A–D, edge weights = pair efficiencies; the maximum
    // weighted matching is plan 1 ({A,B}, {C,D}-style complementary
    // pairs), not plan 2 ({A,C}, {B,D}).
    let jobs = fig4_jobs();
    let mut g = DenseGraph::new(4);
    for u in 0..4 {
        for v in u + 1..4 {
            let gamma = pair_efficiency(&jobs[u], &jobs[v], OrderingPolicy::Best);
            g.set_weight(u, v, weight_from_f64(gamma));
        }
    }
    let m = maximum_weight_matching(&g);
    assert_eq!(m.num_pairs(), 2);
    for (u, v) in m.pairs() {
        // Every matched pair must be cpu-heavy + gpu-heavy.
        assert_ne!(
            u % 2,
            v % 2,
            "matched same-bottleneck pair: {:?}",
            m.pairs()
        );
    }
    // Plan 1's total weight (2.0 scaled) strictly exceeds plan 2's (1.5).
    assert_eq!(m.total_weight, 2 * weight_from_f64(1.0));
}

#[test]
fn figure6_best_ordering_beats_worst() {
    // Fig. 6: job A = 2 units CPU + 1 on each other resource; job B = 2
    // units GPU + 1 on each other. Best ordering T = 5; a bad one is
    // longer.
    let a = StageProfile::new(secs(1), secs(2), secs(1), secs(1));
    let b = StageProfile::new(secs(1), secs(1), secs(2), secs(1));
    let best = muri::interleave::choose_ordering(&[a, b], OrderingPolicy::Best);
    let worst = muri::interleave::choose_ordering(&[a, b], OrderingPolicy::Worst);
    assert_eq!(best.iteration_time, secs(5));
    assert!(worst.iteration_time > best.iteration_time);
}

#[test]
fn table2_normalized_throughputs_reproduce() {
    // Table 2's four jobs at 16 GPUs: measured normalized throughputs
    // 0.86 / 0.48 / 0.41 / 0.25, total 2.00. Our Eq. 3 model with the
    // Table-2-calibrated contention overhead lands within a few percent
    // on every entry.
    let members: Vec<GroupMember> = ModelKind::table2_models()
        .iter()
        .enumerate()
        .map(|(i, &m)| GroupMember {
            job: JobId(i as u32),
            profile: m.profile(16),
        })
        .collect();
    let group = InterleaveGroup::form(members, OrderingPolicy::Best);
    let overhead = 1.0 + 0.03 * 3.0;
    let paper = [0.86, 0.48, 0.41, 0.25];
    let mut total = 0.0;
    for (i, &expected) in paper.iter().enumerate() {
        let ours = group.normalized_throughput(i) / overhead;
        total += ours;
        assert!(
            (ours - expected).abs() < 0.05,
            "member {i}: ours {ours:.3} vs paper {expected}"
        );
    }
    assert!((total - 2.0).abs() < 0.1, "total {total:.3} vs paper 2.00");
}

#[test]
fn section21_gpu_sharing_example() {
    // §2.1: two 1-unit jobs contending on a non-GPU resource run at half
    // speed when co-located; average JCT 2.0 vs 1.5 under FIFO — sharing
    // without interleaving can hurt.
    let model = InterferenceModel::fair();
    let shared_jct = model.slowdown(2) * 1.0;
    let fifo_avg = (1.0 + 2.0) / 2.0;
    assert_eq!(shared_jct, 2.0);
    assert!(shared_jct > fifo_avg);
}

#[test]
fn table1_bottlenecks_match_table3_classes() {
    // Table 1's profiles imply Table 3's bottleneck classes.
    for m in ModelKind::ALL {
        assert_eq!(
            m.profile(16).bottleneck(),
            m.declared_bottleneck(),
            "{m} profile disagrees with its Table 3 class"
        );
    }
}
