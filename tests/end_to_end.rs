//! Workspace-level integration tests: cross-crate invariants and
//! metamorphic properties of the full pipeline (trace → scheduler →
//! simulator → metrics), exercised through the `muri` facade.

use muri::cluster::ClusterSpec;
use muri::core::{PolicyKind, SchedulerConfig};
use muri::sim::{simulate, SimConfig, SimReport};
use muri::workload::{JobId, JobSpec, ModelKind, SimDuration, SimTime, SynthConfig, Trace};

fn small_trace(n: usize, seed: u64) -> Trace {
    SynthConfig {
        name: "e2e".into(),
        num_jobs: n,
        seed,
        duration_median_secs: 240.0,
        duration_sigma: 1.0,
        load_reference_gpus: 16,
        target_load: 1.3,
        gpu_dist: muri::workload::GpuDistribution::default().capped(8),
        ..SynthConfig::default()
    }
    .generate()
}

fn run(trace: &Trace, policy: PolicyKind) -> SimReport {
    let cfg = SimConfig {
        cluster: ClusterSpec::with_machines(2),
        ..SimConfig::testbed(SchedulerConfig::preset(policy))
    };
    simulate(trace, &cfg)
}

#[test]
fn every_policy_completes_every_job() {
    let trace = small_trace(40, 11);
    for policy in [
        PolicyKind::Fifo,
        PolicyKind::Srsf,
        PolicyKind::Tiresias,
        PolicyKind::Themis,
        PolicyKind::AntMan,
        PolicyKind::MuriS,
        PolicyKind::MuriL,
    ] {
        let r = run(&trace, policy);
        assert!(r.all_finished(), "{}: unfinished jobs", policy.name());
        assert_eq!(r.records.len(), trace.len());
        for rec in &r.records {
            assert_eq!(rec.iterations_done, rec.iterations_total, "{}", rec.id);
        }
    }
}

#[test]
fn makespan_scales_with_job_durations() {
    // Metamorphic: doubling every job's iteration count roughly doubles
    // the saturated-phase makespan (restart penalties and queue padding
    // make it slightly sublinear).
    let base = small_trace(30, 13);
    let doubled = Trace::new(
        "e2e-doubled",
        base.jobs
            .iter()
            .map(|j| JobSpec {
                iterations: j.iterations * 2,
                ..*j
            })
            .collect(),
    );
    let r1 = run(&base, PolicyKind::MuriL);
    let r2 = run(&doubled, PolicyKind::MuriL);
    let ratio = r2.makespan_secs() / r1.makespan_secs();
    assert!(
        (1.5..=2.6).contains(&ratio),
        "doubling work should ~double makespan, got {ratio:.2}"
    );
}

#[test]
fn more_gpus_never_hurt_makespan() {
    let trace = small_trace(40, 17);
    let mk = |machines: u32| {
        let cfg = SimConfig {
            cluster: ClusterSpec::with_machines(machines),
            ..SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriS))
        };
        simulate(&trace, &cfg).makespan_secs()
    };
    let small = mk(1);
    let large = mk(4);
    assert!(
        large <= small * 1.05,
        "4 machines ({large}) should not be slower than 1 ({small})"
    );
}

#[test]
fn jct_decomposes_into_queueing_plus_execution() {
    let trace = small_trace(30, 19);
    let r = run(&trace, PolicyKind::MuriL);
    for rec in &r.records {
        let jct = rec.jct().expect("finished");
        let queueing = rec.queueing_delay().expect("started");
        assert!(queueing <= jct, "{}", rec.id);
        // Attained execution time happens inside the JCT window.
        assert!(rec.attained <= jct, "{}", rec.id);
    }
}

#[test]
fn interleaving_policies_run_more_jobs_concurrently() {
    let trace = small_trace(60, 23).at_time_zero();
    let srsf = run(&trace, PolicyKind::Srsf);
    let muri = run(&trace, PolicyKind::MuriS);
    let peak = |r: &SimReport| r.series.iter().map(|s| s.running_jobs).max().unwrap_or(0);
    assert!(
        peak(&muri) > peak(&srsf),
        "Muri should pack more concurrent jobs: {} vs {}",
        peak(&muri),
        peak(&srsf)
    );
}

#[test]
fn profiler_cache_means_one_measurement_per_model() {
    use muri::workload::{Profiler, ProfilerConfig};
    let mut p = Profiler::new(ProfilerConfig::with_noise(0.3));
    let trace = small_trace(50, 29);
    for j in &trace.jobs {
        let _ = p.measure(j);
    }
    // At most one measurement per (model, gpu-count) pair.
    let mut pairs: Vec<(ModelKind, u32)> =
        trace.jobs.iter().map(|j| (j.model, j.num_gpus)).collect();
    pairs.sort_unstable();
    pairs.dedup();
    assert_eq!(p.measurements() as usize, pairs.len());
}

#[test]
fn zero_length_trace_is_a_noop() {
    let trace = Trace::new("empty", Vec::new());
    let r = run(&trace, PolicyKind::MuriL);
    assert_eq!(r.records.len(), 0);
    assert_eq!(r.makespan_secs(), 0.0);
}

#[test]
fn single_job_trace_runs_immediately() {
    let job = JobSpec::new(JobId(0), ModelKind::Bert, 4, 200, SimTime::from_secs(50));
    let trace = Trace::new("one", vec![job]);
    let r = run(&trace, PolicyKind::MuriS);
    let rec = &r.records[0];
    assert_eq!(rec.first_start, Some(SimTime::from_secs(50)));
    let expected = job.solo_duration() + SimDuration::from_secs(30); // restart penalty
    assert_eq!(rec.jct(), Some(expected));
}

#[test]
fn reports_serialize_to_json() {
    let trace = small_trace(10, 31);
    let r = run(&trace, PolicyKind::MuriL);
    let json = serde_json::to_string(&r).expect("report serializes");
    let back: SimReport = serde_json::from_str(&json).expect("report deserializes");
    assert_eq!(r, back);
}
