//! Fidelity guarantees across the model zoo: the closed-form lockstep
//! model (Eq. 3) that the scheduler and simulator use must upper-bound
//! the fine-grained timeline executor for every model pair, and the
//! §2.2 memory-feasibility argument must hold for every 4-way group the
//! matcher could form.

use muri::interleave::{
    choose_ordering, run_timeline, stagger_delays, OrderingPolicy, TimelineJob,
};
use muri::workload::{group_memory_overhead, group_peak_memory_mb, JobId, ModelKind, SimDuration};

#[test]
fn eq3_upper_bounds_the_executor_for_every_pair() {
    for (i, a) in ModelKind::ALL.iter().enumerate() {
        for b in ModelKind::ALL.iter().skip(i + 1) {
            let profiles = [a.profile(16), b.profile(16)];
            let ordering = choose_ordering(&profiles, OrderingPolicy::Best);
            let delays = stagger_delays(&profiles, &ordering.offsets);
            let jobs: Vec<TimelineJob> = profiles
                .iter()
                .zip(delays)
                .enumerate()
                .map(|(j, (&profile, initial_delay))| TimelineJob {
                    id: JobId(j as u32),
                    profile,
                    slots: vec![0],
                    initial_delay,
                    iterations: 40,
                })
                .collect();
            let report = run_timeline(&jobs, 1, SimDuration::from_hours(6));
            assert!(!report.horizon_reached, "{a}+{b} did not finish");
            let realized = (0..2)
                .filter_map(|j| report.avg_iteration_time(&jobs, j))
                .max()
                .expect("both finished");
            assert!(
                realized.as_secs_f64() <= ordering.iteration_time.as_secs_f64() * 1.02,
                "{a}+{b}: executor {} exceeded the Eq. 3 bound {}",
                realized,
                ordering.iteration_time
            );
        }
    }
}

#[test]
fn every_possible_4way_group_fits_a_v100() {
    // §2.2's feasibility claim, exhaustively over all C(8,4) = 70 groups:
    // persistent state stacks but activation peaks interleave, so every
    // group fits the 32 GB testbed GPU.
    let models = ModelKind::ALL;
    let mut checked = 0;
    for a in 0..models.len() {
        for b in a + 1..models.len() {
            for c in b + 1..models.len() {
                for d in c + 1..models.len() {
                    let group = [
                        models[a].memory_footprint(),
                        models[b].memory_footprint(),
                        models[c].memory_footprint(),
                        models[d].memory_footprint(),
                    ];
                    let peak = group_peak_memory_mb(&group);
                    assert!(
                        peak < 32_000,
                        "{}+{}+{}+{}: peak {peak} MB exceeds a V100",
                        models[a],
                        models[b],
                        models[c],
                        models[d]
                    );
                    // And overhead over the hungriest member stays modest
                    // (paper: <10% for the Table 2 group; <35% for any).
                    assert!(
                        group_memory_overhead(&group) < 1.35,
                        "{}+{}+{}+{}: overhead too high",
                        models[a],
                        models[b],
                        models[c],
                        models[d]
                    );
                    checked += 1;
                }
            }
        }
    }
    assert_eq!(checked, 70);
}
