//! Workspace-level property tests: invariants that must hold for *any*
//! workload, spanning the interleaving math, the grouping algorithm, the
//! scheduler's planning, and trace serialization.

use muri::core::{
    multi_round_grouping, plan_schedule, GroupingConfig, GroupingMode, PendingJob, PolicyKind,
    SchedulerConfig,
};
use muri::interleave::{choose_ordering, group_efficiency, OrderingPolicy};
use muri::workload::{
    JobId, JobSpec, ModelKind, ResourceKind, SimDuration, SimTime, StageProfile, Trace,
};
use proptest::prelude::*;

/// An arbitrary stage profile with stage durations up to ~100 s
/// (microsecond granularity).
fn arb_profile() -> impl Strategy<Value = StageProfile> {
    (
        0u64..100_000_000,
        0u64..100_000_000,
        0u64..100_000_000,
        0u64..100_000_000,
    )
        .prop_map(|(a, b, c, d)| {
            StageProfile::new(
                SimDuration::from_micros(a),
                SimDuration::from_micros(b),
                SimDuration::from_micros(c),
                SimDuration::from_micros(d),
            )
        })
}

fn arb_profiles(max: usize) -> impl Strategy<Value = Vec<StageProfile>> {
    proptest::collection::vec(arb_profile(), 1..=max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn efficiency_is_always_in_unit_interval(profiles in arb_profiles(4)) {
        for policy in [OrderingPolicy::Best, OrderingPolicy::Worst, OrderingPolicy::Canonical] {
            let ordering = choose_ordering(&profiles, policy);
            let gamma = group_efficiency(&profiles, &ordering.offsets);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&gamma), "{policy:?}: γ = {gamma}");
        }
    }

    #[test]
    fn group_iteration_time_bounds(profiles in arb_profiles(4)) {
        // max member serial time ≤ T_best ≤ Σ member serial times.
        let ordering = choose_ordering(&profiles, OrderingPolicy::Best);
        let t = ordering.iteration_time;
        let max_solo = profiles.iter().map(StageProfile::iteration_time).max().unwrap();
        let sum_solo: SimDuration = profiles.iter().map(StageProfile::iteration_time).sum();
        prop_assert!(t >= max_solo, "T {t} < max solo {max_solo}");
        prop_assert!(t <= sum_solo, "T {t} > Σ solo {sum_solo}");
        // Worst ordering can only be slower.
        let worst = choose_ordering(&profiles, OrderingPolicy::Worst);
        prop_assert!(worst.iteration_time >= t);
    }

    #[test]
    fn per_resource_busy_time_fits_into_iteration(profiles in arb_profiles(4)) {
        let ordering = choose_ordering(&profiles, OrderingPolicy::Best);
        for r in ResourceKind::ALL {
            let busy: SimDuration = profiles.iter().map(|p| p.duration(r)).sum();
            prop_assert!(
                busy <= ordering.iteration_time,
                "{r}: busy {busy} exceeds T {}", ordering.iteration_time
            );
        }
    }

    #[test]
    fn grouping_always_partitions_input(
        profiles in arb_profiles(12),
        cap in 1usize..=4,
        mode_sel in 0u8..4,
    ) {
        let mode = match mode_sel {
            0 => GroupingMode::None,
            1 => GroupingMode::Blossom,
            2 => GroupingMode::GreedyMatching,
            _ => GroupingMode::PriorityPacking,
        };
        let cfg = GroupingConfig { mode, max_group_size: cap, ..GroupingConfig::default() };
        let groups = multi_round_grouping(&profiles, &cfg);
        let mut seen: Vec<usize> = groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..profiles.len()).collect::<Vec<_>>());
        for g in &groups {
            prop_assert!(g.len() <= cap.max(1));
        }
    }

    #[test]
    fn plans_never_exceed_capacity_or_duplicate_jobs(
        n in 1usize..40,
        free in 0u32..=64,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move |bound: u64| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state % bound
        };
        let pending: Vec<PendingJob> = (0..n)
            .map(|i| PendingJob {
                id: JobId(i as u32),
                num_gpus: 1 << next(4),
                profile: ModelKind::ALL[next(8) as usize].profile(16),
                submit_time: SimTime::from_secs(next(10_000)),
                attained: SimDuration::from_secs(next(5_000)),
                remaining: SimDuration::from_secs(next(50_000) + 1),
            deadline: None,
            })
            .collect();
        for policy in [PolicyKind::Srsf, PolicyKind::MuriS, PolicyKind::MuriL, PolicyKind::AntMan] {
            let cfg = SchedulerConfig::preset(policy);
            let plan = plan_schedule(&cfg, &pending, free, SimTime::from_secs(20_000));
            let used: u32 = plan.iter().map(|p| p.num_gpus).sum();
            prop_assert!(used <= free, "{policy:?}: used {used} > free {free}");
            let mut ids: Vec<JobId> = plan.iter().flat_map(|p| p.group.job_ids()).collect();
            let before = ids.len();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), before, "{:?}: job planned twice", policy);
            for p in &plan {
                // Bucket invariant: members all need the group's GPU count.
                for id in p.group.job_ids() {
                    let job = pending.iter().find(|j| j.id == id).unwrap();
                    prop_assert_eq!(job.num_gpus, p.num_gpus);
                }
                prop_assert!(p.group.len() <= cfg.pack_factor());
            }
        }
    }

    #[test]
    fn trace_csv_roundtrip_arbitrary(specs in proptest::collection::vec(
        (0u32..1000, 0usize..8, 0u32..5, 1u64..100_000, 0u64..1_000_000),
        0..50,
    )) {
        let jobs: Vec<JobSpec> = specs
            .iter()
            .enumerate()
            .map(|(i, &(_, model, gpus_exp, iters, submit))| {
                JobSpec::new(
                    JobId(i as u32),
                    ModelKind::ALL[model],
                    1 << gpus_exp,
                    iters,
                    SimTime::from_secs(submit),
                )
            })
            .collect();
        let trace = Trace::new("prop", jobs);
        let back = Trace::from_csv("prop", &trace.to_csv()).expect("own CSV parses");
        prop_assert_eq!(trace, back);
    }
}
