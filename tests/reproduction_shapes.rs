//! Directional reproduction tests: at a reduced trace scale, the headline
//! orderings of the paper's evaluation must hold. (Full-scale numbers are
//! recorded in EXPERIMENTS.md; these tests keep the *shape* from
//! regressing.)

use muri::core::{PolicyKind, SchedulerConfig};
use muri::sim::{simulate, SimConfig, SimReport};
use muri::workload::philly_like_trace;

fn run(trace: &muri::workload::Trace, policy: PolicyKind) -> SimReport {
    simulate(trace, &SimConfig::testbed(SchedulerConfig::preset(policy)))
}

#[test]
fn muri_l_beats_duration_unaware_baselines_on_loaded_trace() {
    // Fig. 10's headline on the most loaded trace (trace 4, scaled,
    // all-at-t0 so the backlog is deep even at small scale).
    let trace = philly_like_trace(4, 0.05).at_time_zero();
    let muri = run(&trace, PolicyKind::MuriL);
    let tiresias = run(&trace, PolicyKind::Tiresias);
    let themis = run(&trace, PolicyKind::Themis);
    assert!(muri.all_finished() && tiresias.all_finished() && themis.all_finished());
    assert!(
        tiresias.avg_jct_secs() > muri.avg_jct_secs() * 1.15,
        "Tiresias {} vs Muri-L {}",
        tiresias.avg_jct_secs(),
        muri.avg_jct_secs()
    );
    assert!(
        themis.avg_jct_secs() > muri.avg_jct_secs() * 1.15,
        "Themis {} vs Muri-L {}",
        themis.avg_jct_secs(),
        muri.avg_jct_secs()
    );
}

#[test]
fn muri_s_beats_srtf_on_loaded_trace() {
    // Fig. 9's headline (t0 variant for a deep backlog at small scale).
    let trace = philly_like_trace(4, 0.05).at_time_zero();
    let muri = run(&trace, PolicyKind::MuriS);
    let srtf = run(&trace, PolicyKind::Srtf);
    assert!(
        srtf.avg_jct_secs() > muri.avg_jct_secs() * 1.1,
        "SRTF {} vs Muri-S {}",
        srtf.avg_jct_secs(),
        muri.avg_jct_secs()
    );
    assert!(
        srtf.makespan_secs() >= muri.makespan_secs() * 0.98,
        "makespan should not regress: SRTF {} vs Muri-S {}",
        srtf.makespan_secs(),
        muri.makespan_secs()
    );
}

#[test]
fn lightly_loaded_trace_shows_no_makespan_win() {
    // The paper's own exception (§6.3): trace 3 is lightly loaded, so
    // Muri's makespan speedup vanishes (the last long jobs dominate).
    let trace = philly_like_trace(3, 0.04);
    let muri = run(&trace, PolicyKind::MuriS);
    let srsf = run(&trace, PolicyKind::Srsf);
    let ratio = srsf.makespan_secs() / muri.makespan_secs();
    assert!(
        (0.9..=1.15).contains(&ratio),
        "light trace should show ~no makespan difference, got {ratio:.2}"
    );
}

#[test]
fn time_zero_variant_amplifies_makespan_gains() {
    // §6.3 "Impact of load": the t0 variants give Muri more interleaving
    // opportunity, so its relative makespan never gets worse.
    let trace = philly_like_trace(2, 0.1);
    let t0 = trace.at_time_zero();
    let speedup = |t: &muri::workload::Trace| {
        run(t, PolicyKind::Srsf).makespan_secs() / run(t, PolicyKind::MuriS).makespan_secs()
    };
    let original = speedup(&trace);
    let at_zero = speedup(&t0);
    assert!(
        at_zero >= original * 0.9,
        "t0 speedup {at_zero:.2} should not collapse vs original {original:.2}"
    );
    assert!(
        at_zero > 1.02,
        "t0 variant must show a makespan win, got {at_zero:.2}"
    );
}

#[test]
fn worst_ordering_ablation_degrades_jct() {
    // Fig. 11's direction at small scale.
    let trace = philly_like_trace(4, 0.03);
    let good = run(&trace, PolicyKind::MuriL);
    let mut worst_cfg = SimConfig::testbed(SchedulerConfig::preset(PolicyKind::MuriL));
    worst_cfg.scheduler.grouping.ordering = muri::interleave::OrderingPolicy::Worst;
    let bad = simulate(&trace, &worst_cfg);
    assert!(
        bad.avg_jct_secs() >= good.avg_jct_secs(),
        "worst ordering cannot beat best: {} vs {}",
        bad.avg_jct_secs(),
        good.avg_jct_secs()
    );
}
