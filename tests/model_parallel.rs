//! §7's model-parallel sketch, integrated: derive per-rank stage profiles
//! for two pipeline-parallel jobs, interleave rank-by-rank on shared GPU
//! slots, and execute through the fine-grained timeline executor.

use muri::interleave::{
    mp_pair_efficiency, run_timeline, ModelParallelJob, OrderingPolicy, TimelineJob,
};
use muri::workload::{JobId, SimDuration};

fn mp(id: u32, compute_secs: u64, transfer_secs: u64) -> ModelParallelJob {
    ModelParallelJob {
        id: JobId(id),
        ranks: 4,
        load: SimDuration::from_secs(1),
        preprocess: SimDuration::from_secs(1),
        compute_per_rank: SimDuration::from_secs(compute_secs),
        transfer: SimDuration::from_secs(transfer_secs),
        sync: SimDuration::from_secs(2),
    }
}

/// Build timeline jobs placing rank r of every MP job on slot r.
fn rank_aligned_timeline(jobs: &[ModelParallelJob], iterations: u64) -> Vec<TimelineJob> {
    let mut out = Vec::new();
    for (j, job) in jobs.iter().enumerate() {
        for (r, profile) in job.worker_profiles().into_iter().enumerate() {
            out.push(TimelineJob {
                id: JobId((j * 100 + r) as u32),
                profile,
                slots: vec![r],
                initial_delay: SimDuration::from_millis(j as u64 * 500),
                iterations,
            });
        }
    }
    out
}

#[test]
fn two_mp_jobs_share_a_pipeline_without_deadlock() {
    let compute_heavy = mp(1, 6, 1);
    let transfer_heavy = mp(2, 1, 4);
    let timeline = rank_aligned_timeline(&[compute_heavy, transfer_heavy], 20);
    let report = run_timeline(&timeline, 4, SimDuration::from_hours(12));
    assert!(!report.horizon_reached, "MP interleaving deadlocked");
    for (i, job) in timeline.iter().enumerate() {
        assert_eq!(report.completed_iterations[i], job.iterations, "worker {i}");
    }
}

#[test]
fn complementary_mp_pair_shares_better_than_clones() {
    // Execute both pairings and compare realized aggregate slowdowns.
    let a = mp(1, 6, 1);
    let b = mp(2, 1, 4); // complementary
    let c = mp(3, 6, 1); // clone of a
    let horizon = SimDuration::from_hours(24);
    let iterations = 20;
    let runtime = |jobs: &[ModelParallelJob]| -> f64 {
        let timeline = rank_aligned_timeline(jobs, iterations);
        let report = run_timeline(&timeline, 4, horizon);
        assert!(!report.horizon_reached);
        report
            .finish_time
            .iter()
            .map(|t| t.expect("finished").as_secs_f64())
            .fold(0.0, f64::max)
    };
    // Normalize by the serial back-to-back time of each pairing.
    let solo = |job: &ModelParallelJob| -> f64 {
        let timeline = rank_aligned_timeline(std::slice::from_ref(job), iterations);
        let report = run_timeline(&timeline, 4, horizon);
        report
            .finish_time
            .iter()
            .map(|t| t.expect("finished").as_secs_f64())
            .fold(0.0, f64::max)
    };
    let gain_complementary = (solo(&a) + solo(&b)) / runtime(&[a, b]);
    let gain_clone = (solo(&a) + solo(&c)) / runtime(&[a, c]);
    assert!(
        gain_complementary > gain_clone,
        "complementary MP pair ({gain_complementary:.2}x) must share better than clones ({gain_clone:.2}x)"
    );
    assert!(
        gain_complementary > 1.2,
        "sharing should clearly pay: {gain_complementary:.2}x"
    );
    // And the rank-aligned γ the scheduler would use agrees on the ranking.
    let g_good = mp_pair_efficiency(&a, &b, OrderingPolicy::Best).unwrap();
    let g_bad = mp_pair_efficiency(&a, &c, OrderingPolicy::Best).unwrap();
    assert!(g_good > g_bad);
}
